// The backend registry + driver contract, backend by backend:
//  * the registry lists the six built-ins and generates usage text;
//  * run_model output is bit-identical to the direct generator calls the
//    pre-registry commands made (the migration's no-behavior-change bar);
//  * every backend is thread-count invariant at 1/2/8 threads (swap phases
//    excluded — MCMC over a shared table is thread-dependent by design);
//  * governance verdicts (pre-cancelled token, expired deadline) surface
//    as typed curtailments through the driver for every backend;
//  * the driver rejects what a backend does not declare (swaps / spill /
//    checkpoint / space / params) as kInvalidArgument;
//  * the driver census flags a backend whose output violates its declared
//    sampling space, and the model block lands in the run report.

#include <gtest/gtest.h>
#include <omp.h>

#include <memory>
#include <string>
#include <vector>

#include "bipartite/bipartite.hpp"
#include "core/null_model.hpp"
#include "directed/directed_generators.hpp"
#include "gen/chung_lu.hpp"
#include "gen/powerlaw.hpp"
#include "lfr/lfr.hpp"
#include "model/driver.hpp"
#include "model/registry.hpp"
#include "obs/report.hpp"

namespace nullgraph::model {
namespace {

ModelSpec make_spec(
    std::string backend, std::uint64_t seed,
    std::vector<std::pair<std::string, std::string>> params = {}) {
  ModelSpec spec;
  spec.backend = std::move(backend);
  spec.seed = seed;
  spec.params = std::move(params);
  return spec;
}

Result<ModelRun> run(const ModelSpec& spec) {
  return run_model(spec, PipelineContext{});
}

/// The shared degree input every degree-driven comparison uses: small
/// enough for 1/2/8-thread sweeps, skewed enough to exercise all classes.
PowerlawParams small_powerlaw() {
  PowerlawParams params;
  params.n = 2000;
  params.gamma = 2.5;
  params.dmin = 1;
  params.dmax = 50;
  return params;
}

std::vector<std::pair<std::string, std::string>> small_powerlaw_params() {
  return {{"powerlaw", ""}, {"n", "2000"}, {"dmax", "50"}};
}

// --------------------------------------------------------------- registry

TEST(ModelRegistry, ListsBuiltinsInRegistrationOrder) {
  const std::vector<const GeneratorBackend*> backends = all_backends();
  ASSERT_GE(backends.size(), 6u);  // tests may append their own
  const char* expected[] = {"null-model", "chung-lu", "directed",
                            "bipartite",  "lfr",      "rmat"};
  for (std::size_t i = 0; i < 6; ++i)
    EXPECT_EQ(backends[i]->name(), expected[i]);
  EXPECT_NE(find_backend("rmat"), nullptr);
  EXPECT_EQ(find_backend("does-not-exist"), nullptr);
}

TEST(ModelRegistry, UsageAndDescribeCoverEveryBackend) {
  const std::string usage = registry_usage_text();
  const std::string described = describe_backends();
  for (const GeneratorBackend* backend : all_backends()) {
    const std::string name(backend->name());
    EXPECT_NE(usage.find(name), std::string::npos) << name;
    EXPECT_NE(described.find(name), std::string::npos) << name;
  }
  // Declared parameters surface in the describe body (spot check).
  EXPECT_NE(described.find("--scale"), std::string::npos);
}

// ------------------------------------- registry vs direct call bit-parity

TEST(ModelParity, NullModelMatchesDirectPipeline) {
  ModelSpec spec = make_spec("null-model", 42, small_powerlaw_params());
  spec.swap_iterations = 3;
  const Result<ModelRun> via_registry = run(spec);
  ASSERT_TRUE(via_registry.ok()) << via_registry.status().message();

  GenerateConfig config;
  config.seed = 42;
  config.swap_iterations = 3;
  const GenerateResult direct =
      generate_null_graph(powerlaw_distribution(small_powerlaw()), config);
  EXPECT_EQ(via_registry.value().output.result.edges, direct.edges);
}

TEST(ModelParity, ChungLuSpaceSelectsTheMatchingKernel) {
  const DegreeDistribution dist = powerlaw_distribution(small_powerlaw());
  const std::uint64_t seed = 33;
  ChungLuConfig config;
  config.seed = seed;

  // Default space: stub-labeled loopy-multi = the raw multigraph kernel.
  ModelSpec multi = make_spec("chung-lu", seed, {{"n", "2000"}, {"dmax", "50"}});
  Result<ModelRun> got = run(multi);
  ASSERT_TRUE(got.ok()) << got.status().message();
  EXPECT_EQ(got.value().output.result.edges, chung_lu_multigraph(dist, config));

  // Stub-labeled simple = the erased variant.
  ModelSpec erased = multi;
  erased.space = SamplingSpace{false, false, Labeling::kStub};
  got = run(erased);
  ASSERT_TRUE(got.ok()) << got.status().message();
  EXPECT_EQ(got.value().output.result.edges, erased_chung_lu(dist, config));

  // Vertex-labeled simple = the Bernoulli / edge-skip variant; the driver
  // census must agree with the declared simple space.
  ModelSpec bernoulli = multi;
  bernoulli.space = SamplingSpace{false, false, Labeling::kVertex};
  got = run(bernoulli);
  ASSERT_TRUE(got.ok()) << got.status().message();
  EXPECT_EQ(got.value().output.result.edges, bernoulli_chung_lu(dist, seed));
  const PipelineReport& report = got.value().output.result.report;
  ASSERT_FALSE(report.checks.empty());
  EXPECT_EQ(report.checks.back().phase, "sampling space");
  EXPECT_TRUE(report.checks.back().status.ok());
}

TEST(ModelParity, DirectedMatchesDirectGenerator) {
  const DegreeDistribution dist = powerlaw_distribution(small_powerlaw());
  std::vector<DirectedDegreeClass> classes;
  for (const DegreeClass& c : dist.classes())
    classes.push_back({c.degree, c.degree, c.count});
  const ArcList arcs = generate_directed_null_graph(
      DirectedDegreeDistribution(std::move(classes)), 7, 2);

  ModelSpec spec = make_spec("directed", 7, small_powerlaw_params());
  spec.swap_iterations = 2;
  const Result<ModelRun> got = run(spec);
  ASSERT_TRUE(got.ok()) << got.status().message();
  ASSERT_TRUE(got.value().output.directed);
  const EdgeList& edges = got.value().output.result.edges;
  ASSERT_EQ(edges.size(), arcs.size());
  for (std::size_t i = 0; i < arcs.size(); ++i) {
    EXPECT_EQ(edges[i].u, arcs[i].from);
    EXPECT_EQ(edges[i].v, arcs[i].to);
  }
}

TEST(ModelParity, BipartiteMatchesDirectGenerator) {
  const DegreeDistribution dist = powerlaw_distribution(small_powerlaw());
  const BipartiteDistribution bipartite(dist.classes(), dist.classes());
  const ArcList arcs = bipartite_null_graph(bipartite, 7, 2);

  ModelSpec spec = make_spec("bipartite", 7, small_powerlaw_params());
  spec.swap_iterations = 2;
  const Result<ModelRun> got = run(spec);
  ASSERT_TRUE(got.ok()) << got.status().message();
  ASSERT_TRUE(got.value().output.bipartite);
  EXPECT_EQ(got.value().output.bipartite_left, bipartite.num_left());
  const EdgeList& edges = got.value().output.result.edges;
  ASSERT_EQ(edges.size(), arcs.size());
  for (std::size_t i = 0; i < arcs.size(); ++i) {
    EXPECT_EQ(edges[i].u, arcs[i].from);
    EXPECT_EQ(edges[i].v, arcs[i].to);
  }
}

TEST(ModelParity, LfrMatchesDirectGenerator) {
  LfrParams params;
  params.n = 1500;
  params.mu = 0.25;
  params.seed = 11;
  params.swap_iterations = 2;
  const LfrGraph direct = generate_lfr(params);

  ModelSpec spec =
      make_spec("lfr", 11, {{"n", "1500"}, {"mu", "0.25"}});
  spec.swap_iterations = 2;
  const Result<ModelRun> got = run(spec);
  ASSERT_TRUE(got.ok()) << got.status().message();
  EXPECT_EQ(got.value().output.result.edges, direct.edges);
  EXPECT_EQ(got.value().output.community, direct.community);
  ASSERT_TRUE(got.value().output.lfr.has_value());
  EXPECT_EQ(got.value().output.lfr->num_communities, direct.num_communities);
}

// --------------------------------------------- thread-count invariance

/// One sweep case per backend. Swap-capable backends run with
/// swap_iterations = 0: the swap phase is MCMC over a shared table and
/// thread-DEPENDENT by design (same exclusion the exec-layer sweep makes);
/// everything before it must be bit-identical at any thread count.
struct SweepCase {
  const char* label;
  ModelSpec spec;
};

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  ModelSpec null_model = make_spec("null-model", 7, small_powerlaw_params());
  null_model.swap_iterations = 0;
  cases.push_back({"null-model", null_model});
  cases.push_back(
      {"chung-lu", make_spec("chung-lu", 7, {{"n", "2000"}, {"dmax", "50"}})});
  ModelSpec directed = make_spec("directed", 7, {{"n", "1000"}, {"dmax", "30"}});
  directed.swap_iterations = 0;
  cases.push_back({"directed", directed});
  ModelSpec bipartite =
      make_spec("bipartite", 7, {{"n", "1000"}, {"dmax", "30"}});
  bipartite.swap_iterations = 0;
  cases.push_back({"bipartite", bipartite});
  ModelSpec lfr = make_spec("lfr", 7, {{"n", "1500"}, {"mu", "0.3"}});
  lfr.swap_iterations = 0;
  cases.push_back({"lfr", lfr});
  cases.push_back({"rmat", make_spec("rmat", 7, {{"scale", "10"}})});
  return cases;
}

class BackendThreadSweep : public ::testing::Test {
 protected:
  void SetUp() override { saved_threads_ = omp_get_max_threads(); }
  void TearDown() override { omp_set_num_threads(saved_threads_); }
  int saved_threads_ = 1;
};

TEST_F(BackendThreadSweep, EveryBackendBitIdenticalAtAnyThreadCount) {
  for (const SweepCase& test : sweep_cases()) {
    std::vector<EdgeList> edges;
    std::vector<std::vector<std::uint32_t>> communities;
    for (int threads : {1, 2, 8}) {
      omp_set_num_threads(threads);
      const Result<ModelRun> got = run(test.spec);
      ASSERT_TRUE(got.ok()) << test.label << ": " << got.status().message();
      edges.push_back(got.value().output.result.edges);
      communities.push_back(got.value().output.community);
    }
    EXPECT_EQ(edges[0], edges[1]) << test.label;
    EXPECT_EQ(edges[0], edges[2]) << test.label;
    EXPECT_EQ(communities[0], communities[1]) << test.label;
    EXPECT_EQ(communities[0], communities[2]) << test.label;
    EXPECT_FALSE(edges[0].empty()) << test.label;
  }
}

// ------------------------------------------------- governance through run_model

TEST(ModelGovernance, PreCancelledTokenCurtailsEveryBackend) {
  for (const SweepCase& test : sweep_cases()) {
    PipelineContext ctx;
    ctx.governance.enabled = true;
    ctx.governance.cancel.request_cancel();
    const Result<ModelRun> got = run_model(test.spec, ctx);
    ASSERT_TRUE(got.ok()) << test.label << ": " << got.status().message();
    EXPECT_EQ(got.value().output.result.report.curtailed_by(),
              StatusCode::kCancelled)
        << test.label;
  }
}

TEST(ModelGovernance, BernoulliChungLuPollsBeforeTheDraw) {
  // The Bernoulli kernel has no chunk-granular governor hook; the backend
  // must poll the never-before-polled token itself, BEFORE drawing.
  ModelSpec spec = make_spec("chung-lu", 7, {{"n", "2000"}, {"dmax", "50"}});
  spec.space = SamplingSpace{false, false, Labeling::kVertex};
  PipelineContext ctx;
  ctx.governance.enabled = true;
  ctx.governance.cancel.request_cancel();
  const Result<ModelRun> got = run_model(spec, ctx);
  ASSERT_TRUE(got.ok()) << got.status().message();
  EXPECT_TRUE(got.value().output.result.edges.empty());
  EXPECT_EQ(got.value().output.result.report.curtailed_by(),
            StatusCode::kCancelled);
}

TEST(ModelGovernance, DeadlineCurtailsWithTypedCodeThroughDriver) {
  // Same drill as the library-level governance test: slow_phase_ms makes
  // each swap iteration take >= 20 ms, so a 50 ms deadline must cut the
  // chain — and the typed reason must survive the registry driver.
  ModelSpec spec = make_spec("null-model", 5, small_powerlaw_params());
  spec.swap_iterations = 64;
  PipelineContext ctx;
  ctx.guardrails.faults.slow_phase_ms = 20;
  ctx.governance.enabled = true;
  ctx.governance.budget.deadline_ms = 50;
  const Result<ModelRun> got = run_model(spec, ctx);
  ASSERT_TRUE(got.ok()) << got.status().message();
  const PipelineReport& report = got.value().output.result.report;
  EXPECT_EQ(report.curtailed_by(), StatusCode::kDeadlineExceeded);
  // The CLI maps this curtailment to its stable process exit code.
  EXPECT_EQ(status_exit_code(report.curtailed_by()), 12);
}

// ------------------------------------------------------ driver validation

TEST(ModelValidation, DriverRejectsWhatTheBackendDoesNotDeclare) {
  EXPECT_EQ(run(make_spec("no-such-backend", 1)).status().code(),
            StatusCode::kInvalidArgument);

  ModelSpec swaps_on_rmat = make_spec("rmat", 1, {{"scale", "8"}});
  swaps_on_rmat.swap_iterations = 5;
  EXPECT_EQ(run(swaps_on_rmat).status().code(), StatusCode::kInvalidArgument);

  PipelineContext spill_ctx;
  spill_ctx.spill.enabled = true;
  EXPECT_EQ(run_model(make_spec("chung-lu", 1), spill_ctx).status().code(),
            StatusCode::kInvalidArgument);

  PipelineContext checkpoint_ctx;
  checkpoint_ctx.governance.checkpoint_every = 100;
  EXPECT_EQ(
      run_model(make_spec("rmat", 1, {{"scale", "8"}}), checkpoint_ctx)
          .status()
          .code(),
      StatusCode::kInvalidArgument);

  ModelSpec bad_space = make_spec("null-model", 1, small_powerlaw_params());
  bad_space.space = SamplingSpace{true, true, Labeling::kStub};
  EXPECT_EQ(run(bad_space).status().code(), StatusCode::kInvalidArgument);

  EXPECT_EQ(run(make_spec("rmat", 1, {{"bogus", "1"}})).status().code(),
            StatusCode::kInvalidArgument);

  // Missing degree source stays the null model's explicit-choice rule.
  EXPECT_EQ(run(make_spec("null-model", 1)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ModelValidation, RmatRejectsOutOfRangeParameters) {
  EXPECT_EQ(run(make_spec("rmat", 1, {{"scale", "0"}})).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(run(make_spec("rmat", 1, {{"scale", "31"}})).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(run(make_spec("rmat", 1, {{"edge-factor", "0"}})).status().code(),
            StatusCode::kInvalidArgument);
  // a + b + c must leave room for the fourth quadrant.
  EXPECT_EQ(run(make_spec("rmat", 1,
                          {{"a", "0.5"}, {"b", "0.3"}, {"c", "0.2"}}))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(run(make_spec("rmat", 1, {{"scale", "not-a-number"}}))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

// ------------------------------------- the census + the report model block

/// A deliberately dishonest backend: declares the simple space, emits a
/// self-loop and a duplicate edge. The driver census must catch it.
class LoopyLiarBackend final : public GeneratorBackend {
 public:
  std::string_view name() const noexcept override { return "test-loopy-liar"; }
  std::string_view summary() const noexcept override {
    return "test backend that violates its declared space";
  }
  BackendCapabilities capabilities() const override { return {}; }
  SamplingSpace default_space() const override {
    return {false, false, Labeling::kVertex};
  }
  std::vector<SamplingSpace> supported_spaces() const override {
    return {default_space()};
  }
  std::vector<BackendParam> params() const override { return {}; }
  Result<GenerateOutput> generate(const ModelSpec&,
                                  const PipelineContext&) const override {
    GenerateOutput out;
    out.result.edges = {{3, 3}, {1, 2}, {1, 2}};
    out.space = default_space();
    out.space_verified = false;
    return out;
  }
};

TEST(ModelCensus, DriverFlagsDeclaredSpaceViolation) {
  register_backend(std::make_unique<LoopyLiarBackend>());
  const Result<ModelRun> got = run(make_spec("test-loopy-liar", 1));
  ASSERT_TRUE(got.ok()) << got.status().message();
  const PipelineReport& report = got.value().output.result.report;
  ASSERT_FALSE(report.checks.empty());
  const PhaseCheck& check = report.checks.back();
  EXPECT_EQ(check.phase, "sampling space");
  EXPECT_EQ(check.status.code(), StatusCode::kNonSimpleOutput);
  EXPECT_NE(check.status.message().find("1 self-loops"), std::string::npos)
      << check.status.message();
  EXPECT_NE(check.status.message().find("1 multi-edges"), std::string::npos)
      << check.status.message();
  EXPECT_FALSE(report.ok());
}

TEST(ModelReport, ModelBlockLandsInRunReport) {
  const Result<ModelRun> got = run(make_spec("rmat", 9, {{"scale", "8"}}));
  ASSERT_TRUE(got.ok()) << got.status().message();
  obs::RunReportInputs inputs;
  inputs.command = "generate";
  inputs.seed = 9;
  inputs.result = &got.value().output.result;
  inputs.model = &got.value().model;
  const std::string json = obs::render_run_report(inputs);
  EXPECT_NE(json.find("\"model\":{\"backend\":\"rmat\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"sampling_space\":{\"name\":\"loopy-multi\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"space_verified\":false"), std::string::npos) << json;

  // Null model pointer keeps the key out entirely (append-only schema).
  inputs.model = nullptr;
  EXPECT_EQ(obs::render_run_report(inputs).find("\"model\""),
            std::string::npos);
}

}  // namespace
}  // namespace nullgraph::model
