#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace nullgraph {
namespace {

TEST(Splitmix64, IsDeterministic) {
  std::uint64_t a = 42, b = 42;
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(splitmix64_next(a), splitmix64_next(b));
}

TEST(Splitmix64, AdvancesState) {
  std::uint64_t state = 7;
  const std::uint64_t first = splitmix64_next(state);
  const std::uint64_t second = splitmix64_next(state);
  EXPECT_NE(first, second);
}

TEST(Splitmix64, KnownVector) {
  // Reference value for seed 0 from the splitmix64 reference code.
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64_next(state), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(splitmix64_next(state), 0x6e789e6aa1b965f4ULL);
}

TEST(Xoshiro, SameSeedSameStream) {
  Xoshiro256ss a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro, DifferentSeedsDiffer) {
  Xoshiro256ss a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Xoshiro, UniformInHalfOpenUnit) {
  Xoshiro256ss rng(5);
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro, UniformOpenNeverZero) {
  Xoshiro256ss rng(5);
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform_open();
    EXPECT_GT(u, 0.0);
    EXPECT_LT(u, 1.0);
    EXPECT_TRUE(std::isfinite(std::log(u)));
  }
}

TEST(Xoshiro, UniformMeanNearHalf) {
  Xoshiro256ss rng(99);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro, BoundedStaysInBound) {
  Xoshiro256ss rng(11);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.bounded(bound), bound);
  }
}

TEST(Xoshiro, BoundedOneAlwaysZero) {
  Xoshiro256ss rng(13);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Xoshiro, BoundedRoughlyUniform) {
  Xoshiro256ss rng(17);
  const std::uint64_t bound = 8;
  std::vector<int> counts(bound, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++counts[rng.bounded(bound)];
  for (std::uint64_t k = 0; k < bound; ++k) {
    EXPECT_NEAR(counts[k], n / static_cast<int>(bound), n / 100);
  }
}

TEST(Xoshiro, FlipIsFair) {
  Xoshiro256ss rng(23);
  int heads = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) heads += rng.flip() ? 1 : 0;
  EXPECT_NEAR(heads, n / 2, n / 50);
}

TEST(Xoshiro, LongJumpDecorrelates) {
  Xoshiro256ss a(77);
  Xoshiro256ss b = a;
  b.long_jump();
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(RngPool, SizeDefaultsToThreads) {
  RngPool pool(1);
  EXPECT_GE(pool.size(), 1);
}

TEST(RngPool, ExplicitSize) {
  RngPool pool(1, 7);
  EXPECT_EQ(pool.size(), 7);
}

TEST(RngPool, StreamsAreDistinct) {
  RngPool pool(42, 4);
  std::set<std::uint64_t> firsts;
  for (int s = 0; s < 4; ++s) firsts.insert(pool.stream(s).next());
  EXPECT_EQ(firsts.size(), 4u);
}

TEST(RngPool, ReproducibleForSeed) {
  RngPool a(5, 3), b(5, 3);
  for (int s = 0; s < 3; ++s)
    EXPECT_EQ(a.stream(s).next(), b.stream(s).next());
}

class XoshiroSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(XoshiroSeedSweep, MomentsLookUniform) {
  Xoshiro256ss rng(GetParam());
  const int n = 50000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    sum += u;
    sum_sq += u * u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0 / 3.0, 0.02);  // E[U^2] for U(0,1)
}

INSTANTIATE_TEST_SUITE_P(Seeds, XoshiroSeedSweep,
                         ::testing::Values(0, 1, 2, 1234567, 0xdeadbeef,
                                           ~0ULL));

}  // namespace
}  // namespace nullgraph
