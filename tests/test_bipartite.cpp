#include "bipartite/bipartite.hpp"

#include <gtest/gtest.h>

#include <array>
#include <map>
#include <numeric>
#include <set>
#include <stdexcept>

#include "util/rng.hpp"

namespace nullgraph {
namespace {

std::vector<std::uint64_t> left_degrees_of(const ArcList& edges,
                                           std::size_t n_left) {
  std::vector<std::uint64_t> degrees(n_left, 0);
  for (const Arc& e : edges) ++degrees[e.from];
  return degrees;
}

std::vector<std::uint64_t> right_degrees_of(const ArcList& edges,
                                            std::size_t n_right) {
  std::vector<std::uint64_t> degrees(n_right, 0);
  for (const Arc& e : edges) ++degrees[e.to];
  return degrees;
}

// --- distribution ------------------------------------------------------------

TEST(BipartiteDistribution, Totals) {
  const BipartiteDistribution dist({{2, 3}}, {{3, 2}});
  EXPECT_EQ(dist.num_left(), 3u);
  EXPECT_EQ(dist.num_right(), 2u);
  EXPECT_EQ(dist.num_edges(), 6u);
}

TEST(BipartiteDistribution, ThrowsOnMismatchedTotals) {
  EXPECT_THROW(BipartiteDistribution({{2, 3}}, {{3, 1}}),
               std::invalid_argument);
}

TEST(BipartiteDistribution, FromSequencesAndBack) {
  const auto dist =
      BipartiteDistribution::from_sequences({3, 1, 2}, {2, 2, 2});
  EXPECT_EQ(dist.num_edges(), 6u);
  EXPECT_EQ(dist.left_sequence(),
            (std::vector<std::uint64_t>{1, 2, 3}));  // ascending by class
  EXPECT_EQ(dist.right_sequence(), (std::vector<std::uint64_t>{2, 2, 2}));
}

TEST(BipartiteDistribution, AsDirectedBalances) {
  const BipartiteDistribution dist({{2, 5}}, {{5, 2}});
  const DirectedDegreeDistribution directed = dist.as_directed();
  EXPECT_EQ(directed.num_arcs(), 10u);
  EXPECT_EQ(directed.num_vertices(), 7u);
}

// --- Gale-Ryser ---------------------------------------------------------------

TEST(GaleRyser, CompleteBipartite) {
  // K_{3,4}: left all 4, right all 3.
  EXPECT_TRUE(is_bigraphical({4, 4, 4}, {3, 3, 3, 3}));
  const ArcList edges = gale_ryser_realization({4, 4, 4}, {3, 3, 3, 3});
  EXPECT_EQ(edges.size(), 12u);
  std::set<EdgeKey> keys;
  for (const Arc& e : edges) keys.insert(e.key());
  EXPECT_EQ(keys.size(), 12u);  // all distinct: simple
}

TEST(GaleRyser, StarIsBigraphical) {
  EXPECT_TRUE(is_bigraphical({3}, {1, 1, 1}));  // K_{1,3}
}

TEST(GaleRyser, RejectsOverfullRow) {
  // Left vertex wants 3 neighbours among only 2 right vertices.
  EXPECT_FALSE(is_bigraphical({3, 0}, {2, 1}));
  // Single right vertex cannot take two edges from the same left vertex.
  EXPECT_FALSE(is_bigraphical({2, 2}, {4}));
}

TEST(GaleRyser, RejectsMismatchedTotals) {
  EXPECT_FALSE(is_bigraphical({2}, {1}));
}

TEST(GaleRyser, RealizationMatchesSequencesExactly) {
  Xoshiro256ss rng(17);
  for (int trial = 0; trial < 40; ++trial) {
    // Degrees harvested from a random bipartite graph: bigraphical by
    // construction.
    const std::size_t nl = 12, nr = 15;
    ArcList sample;
    for (VertexId l = 0; l < nl; ++l)
      for (VertexId r = 0; r < nr; ++r)
        if (rng.uniform() < 0.3) sample.push_back({l, r});
    const auto a = left_degrees_of(sample, nl);
    const auto b = right_degrees_of(sample, nr);
    EXPECT_TRUE(is_bigraphical(a, b));
    const ArcList rebuilt = gale_ryser_realization(a, b);
    EXPECT_EQ(left_degrees_of(rebuilt, nl), a);
    EXPECT_EQ(right_degrees_of(rebuilt, nr), b);
    std::set<EdgeKey> keys;
    for (const Arc& e : rebuilt) keys.insert(e.key());
    EXPECT_EQ(keys.size(), rebuilt.size());
  }
}

TEST(GaleRyser, OracleAgreementSmall) {
  // Exhaustive 2x2 bipartite adjacency matrices as oracle.
  std::set<std::array<std::uint64_t, 4>> realizable;
  for (int mask = 0; mask < 16; ++mask) {
    std::array<std::uint64_t, 4> profile{};  // a0,a1,b0,b1
    for (int bit = 0; bit < 4; ++bit) {
      if (mask & (1 << bit)) {
        ++profile[bit / 2];       // left degree
        ++profile[2 + bit % 2];   // right degree
      }
    }
    realizable.insert(profile);
  }
  for (std::uint64_t a0 = 0; a0 <= 2; ++a0)
    for (std::uint64_t a1 = 0; a1 <= 2; ++a1)
      for (std::uint64_t b0 = 0; b0 <= 2; ++b0)
        for (std::uint64_t b1 = 0; b1 <= 2; ++b1) {
          if (a0 + a1 != b0 + b1) continue;
          EXPECT_EQ(is_bigraphical({a0, a1}, {b0, b1}),
                    realizable.contains({a0, a1, b0, b1}))
              << a0 << a1 << "/" << b0 << b1;
        }
}

// --- null graph -----------------------------------------------------------------

TEST(BipartiteNullGraph, SimpleAndInRange) {
  const BipartiteDistribution dist({{1, 300}, {4, 50}, {20, 5}},
                                   {{2, 200}, {10, 20}});
  const ArcList edges = bipartite_null_graph(dist, 1, 3);
  std::set<EdgeKey> keys;
  for (const Arc& e : edges) {
    EXPECT_LT(e.from, dist.num_left());
    EXPECT_LT(e.to, dist.num_right());
    keys.insert(e.key());
  }
  EXPECT_EQ(keys.size(), edges.size());  // simple
  const double m = static_cast<double>(dist.num_edges());
  EXPECT_NEAR(static_cast<double>(edges.size()), m, 0.08 * m);
}

TEST(BipartiteNullGraph, MarginalsMatchInExpectation) {
  const BipartiteDistribution dist({{2, 100}, {30, 5}}, {{1, 250}, {20, 5}});
  std::vector<double> left_mean(dist.num_left(), 0.0);
  std::vector<double> right_mean(dist.num_right(), 0.0);
  const int samples = 25;
  for (int s = 0; s < samples; ++s) {
    const ArcList edges =
        bipartite_null_graph(dist, 100 + static_cast<std::uint64_t>(s), 2);
    const auto l = left_degrees_of(edges, dist.num_left());
    const auto r = right_degrees_of(edges, dist.num_right());
    for (std::size_t v = 0; v < l.size(); ++v)
      left_mean[v] += static_cast<double>(l[v]) / samples;
    for (std::size_t v = 0; v < r.size(); ++v)
      right_mean[v] += static_cast<double>(r[v]) / samples;
  }
  // Per-vertex means are Poisson-noisy (hundreds of 3-sigma chances), so
  // assert at class level: the average over a class's vertices is tight.
  const auto left_target = dist.left_sequence();
  const auto right_target = dist.right_sequence();
  auto class_check = [](const std::vector<double>& mean,
                        const std::vector<std::uint64_t>& target,
                        const char* side) {
    std::map<std::uint64_t, std::pair<double, std::size_t>> by_class;
    for (std::size_t v = 0; v < target.size(); ++v) {
      by_class[target[v]].first += mean[v];
      by_class[target[v]].second += 1;
    }
    for (const auto& [degree, sum_count] : by_class) {
      const double class_mean =
          sum_count.first / static_cast<double>(sum_count.second);
      EXPECT_NEAR(class_mean, static_cast<double>(degree),
                  std::max(0.25, 0.08 * static_cast<double>(degree)))
          << side << " class degree " << degree;
    }
  };
  class_check(left_mean, left_target, "left");
  class_check(right_mean, right_target, "right");
}

TEST(BipartiteNullGraph, HandlesZeroDegreeClasses) {
  const BipartiteDistribution dist({{0, 10}, {2, 50}}, {{0, 7}, {4, 25}});
  const ArcList edges = bipartite_null_graph(dist, 2, 2);
  const auto l = left_degrees_of(edges, dist.num_left());
  const auto r = right_degrees_of(edges, dist.num_right());
  // Zero-degree blocks occupy the low ids and must stay empty.
  for (std::size_t v = 0; v < 10; ++v) EXPECT_EQ(l[v], 0u) << v;
  for (std::size_t v = 0; v < 7; ++v) EXPECT_EQ(r[v], 0u) << v;
  EXPECT_GT(edges.size(), 0u);
}

// --- checkerboard swaps --------------------------------------------------------

TEST(BipartiteSwap, PreservesBothMarginals) {
  ArcList edges = gale_ryser_realization({3, 3, 2, 2, 2}, {4, 4, 2, 2});
  const auto l_before = left_degrees_of(edges, 5);
  const auto r_before = right_degrees_of(edges, 4);
  const std::size_t swapped = bipartite_swap(edges, 5, 20, 3);
  EXPECT_GT(swapped, 0u);
  EXPECT_EQ(left_degrees_of(edges, 5), l_before);
  EXPECT_EQ(right_degrees_of(edges, 4), r_before);
  std::set<EdgeKey> keys;
  for (const Arc& e : edges) {
    EXPECT_LT(e.from, 5u);
    EXPECT_LT(e.to, 4u);
    keys.insert(e.key());
  }
  EXPECT_EQ(keys.size(), edges.size());
}

TEST(BipartiteSwap, LargeRandomInstance) {
  Xoshiro256ss rng(23);
  ArcList edges;
  const std::size_t nl = 500, nr = 400;
  for (VertexId l = 0; l < nl; ++l)
    for (VertexId r = 0; r < nr; ++r)
      if (rng.uniform() < 0.01) edges.push_back({l, r});
  const auto l_before = left_degrees_of(edges, nl);
  const auto r_before = right_degrees_of(edges, nr);
  bipartite_swap(edges, nl, 5, 4);
  EXPECT_EQ(left_degrees_of(edges, nl), l_before);
  EXPECT_EQ(right_degrees_of(edges, nr), r_before);
}

}  // namespace
}  // namespace nullgraph
