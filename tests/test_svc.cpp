// Service-layer tests: wire framing over real sockets, the strict control
// JSON parser, JobSpec validation/round-trip, ThreadArbiter multi-tenancy,
// scheduler admission + fault isolation, spool crash recovery, and an
// in-process daemon end-to-end drill through the client API.
//
// The daemon runs on a std::thread here (allowlisted in the lint's
// THREAD_SPAWN_ALLOWLIST) because run_daemon blocks its caller by design.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/null_model.hpp"
#include "ds/degree_distribution.hpp"
#include "ds/edge_list.hpp"
#include "exec/parallel_context.hpp"
#include "exec/thread_budget.hpp"
#include "io/checkpoint.hpp"
#include "io/graph_io.hpp"
#include "robustness/status.hpp"
#include "svc/client.hpp"
#include "svc/daemon.hpp"
#include "svc/job.hpp"
#include "svc/json.hpp"
#include "svc/scheduler.hpp"
#include "svc/wire.hpp"

namespace nullgraph::svc {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

/// Polls `pred` every few ms until it holds or `timeout_ms` elapses.
template <typename Pred>
bool wait_until(Pred pred, int timeout_ms = 5000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

// --------------------------------------------------------------- JSON

TEST(SvcJson, ParsesScalarsObjectsAndArrays) {
  const Result<JsonValue> doc = parse_json(
      R"({"b":true,"u":7,"d":-2.5,"s":"hi","n":null,)"
      R"("a":[1,2,3],"o":{"inner":42}})");
  ASSERT_TRUE(doc.ok()) << doc.status().to_string();
  const JsonObject& obj = doc.value().as_object();
  EXPECT_TRUE(get_bool(obj, "b", false));
  EXPECT_EQ(get_u64(obj, "u", 0), 7u);
  EXPECT_DOUBLE_EQ(get_double(obj, "d", 0), -2.5);
  EXPECT_EQ(get_string(obj, "s"), "hi");
  ASSERT_NE(find(obj, "a"), nullptr);
  EXPECT_EQ(find(obj, "a")->as_array().size(), 3u);
  EXPECT_EQ(get_u64(find(obj, "o")->as_object(), "inner", 0), 42u);
}

TEST(SvcJson, KeepsFullUnsigned64Fidelity) {
  // Seeds use the whole u64 range; a double intermediate would round.
  const Result<JsonValue> doc =
      parse_json(R"({"seed":18446744073709551615})");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(get_u64(doc.value().as_object(), "seed", 0),
            18446744073709551615ull);
}

TEST(SvcJson, MalformedDocumentsAreClientProtocol) {
  for (const char* bad :
       {"", "{", "[1,2", R"({"a":})", "tru", R"({"a" 1})", "{,}",
        R"({"a":1} trailing)", "nul", R"("unterminated)"}) {
    const Result<JsonValue> doc = parse_json(bad);
    ASSERT_FALSE(doc.ok()) << "accepted: " << bad;
    EXPECT_EQ(doc.status().code(), StatusCode::kClientProtocol) << bad;
  }
}

TEST(SvcJson, NestingDepthIsBounded) {
  // A depth bomb from a hostile client must be a typed reject, not a
  // stack overflow in the recursive parser.
  std::string bomb(64, '[');
  bomb += std::string(64, ']');
  const Result<JsonValue> doc = parse_json(bomb);
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kClientProtocol);
}

TEST(SvcJson, AccessorsFallBackOnMissingOrMistyped) {
  const Result<JsonValue> doc = parse_json(R"({"s":"text","u":3})");
  ASSERT_TRUE(doc.ok());
  const JsonObject& obj = doc.value().as_object();
  EXPECT_EQ(get_u64(obj, "absent", 99), 99u);
  EXPECT_EQ(get_u64(obj, "s", 99), 99u);  // wrong kind == absent
  EXPECT_EQ(get_string(obj, "u", "fb"), "fb");
  EXPECT_FALSE(get_bool(obj, "u", false));
}

// ------------------------------------------------------------- JobSpec

TEST(SvcJobSpec, GenerateSpecRoundTripsThroughSerialize) {
  JobSpec spec;
  spec.op = JobSpec::Op::kGenerate;
  spec.powerlaw.n = 5000;
  spec.powerlaw.gamma = 2.2;
  spec.powerlaw.dmin = 2;
  spec.powerlaw.dmax = 80;
  spec.seed = 0xdeadbeefcafef00dULL;
  spec.swaps = 7;
  spec.deadline_ms = 1500;
  spec.threads = 3;
  spec.checkpoint_every = 2;
  spec.out_path = "/tmp/x.txt";

  const Result<JsonValue> doc = parse_json(serialize_job_spec(spec));
  ASSERT_TRUE(doc.ok());
  const Result<JobSpec> back = parse_job_spec(doc.value().as_object());
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  const JobSpec& b = back.value();
  EXPECT_EQ(b.op, JobSpec::Op::kGenerate);
  EXPECT_EQ(b.powerlaw.n, spec.powerlaw.n);
  EXPECT_DOUBLE_EQ(b.powerlaw.gamma, spec.powerlaw.gamma);
  EXPECT_EQ(b.powerlaw.dmin, spec.powerlaw.dmin);
  EXPECT_EQ(b.powerlaw.dmax, spec.powerlaw.dmax);
  EXPECT_EQ(b.seed, spec.seed);
  EXPECT_EQ(b.swaps, spec.swaps);
  EXPECT_EQ(b.deadline_ms, spec.deadline_ms);
  EXPECT_EQ(b.threads, spec.threads);
  EXPECT_EQ(b.checkpoint_every, spec.checkpoint_every);
  EXPECT_EQ(b.out_path, spec.out_path);
}

TEST(SvcJobSpec, ShuffleInlineUploadRoundTrips) {
  JobSpec spec;
  spec.op = JobSpec::Op::kShuffle;
  spec.edges_follow = true;
  spec.swaps = 3;
  const Result<JsonValue> doc = parse_json(serialize_job_spec(spec));
  ASSERT_TRUE(doc.ok());
  const Result<JobSpec> back = parse_job_spec(doc.value().as_object());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().op, JobSpec::Op::kShuffle);
  EXPECT_TRUE(back.value().edges_follow);
  EXPECT_TRUE(back.value().in_path.empty());
}

TEST(SvcJobSpec, HostileRequestsAreTypedRejectsNamingTheKey) {
  const struct {
    const char* request;
    const char* key;
  } cases[] = {
      {R"({"op":"evaluate"})", "op"},
      {R"({"op":"generate","n":0})", "n"},
      {R"({"op":"generate","n":10,"gamma":-1.5})", "gamma"},
      {R"({"op":"generate","n":10,"dmin":5,"dmax":2})", "dmin/dmax"},
      {R"({"op":"shuffle"})", "in"},
      {R"({"op":"shuffle","in":"/a","edges_follow":true})", "in"},
  };
  for (const auto& c : cases) {
    const Result<JsonValue> doc = parse_json(c.request);
    ASSERT_TRUE(doc.ok()) << c.request;
    const Result<JobSpec> spec = parse_job_spec(doc.value().as_object());
    ASSERT_FALSE(spec.ok()) << "accepted: " << c.request;
    EXPECT_EQ(spec.status().code(), StatusCode::kClientProtocol);
    EXPECT_NE(spec.status().message().find(c.key), std::string::npos)
        << "reject for " << c.request << " does not name '" << c.key
        << "': " << spec.status().message();
  }
}

TEST(SvcJobSpec, StatusCodeFromIdClampsUnknownIdsToInternal) {
  EXPECT_EQ(status_code_from_id(0), StatusCode::kOk);
  EXPECT_EQ(status_code_from_id(
                static_cast<std::uint64_t>(StatusCode::kOverloaded)),
            StatusCode::kOverloaded);
  EXPECT_EQ(status_code_from_id(10000), StatusCode::kInternal);
}

TEST(SvcRender, RejectCarriesCodeExitCodeAndRetryHint) {
  const std::string reply = render_reject(
      Status(StatusCode::kOverloaded, "queue full"), 250);
  const Result<JsonValue> doc = parse_json(reply);
  ASSERT_TRUE(doc.ok()) << reply;
  const JsonObject& obj = doc.value().as_object();
  EXPECT_FALSE(get_bool(obj, "ok", true));
  EXPECT_EQ(get_string(obj, "code"), "kOverloaded");
  EXPECT_EQ(get_u64(obj, "code_id", 0),
            static_cast<std::uint64_t>(StatusCode::kOverloaded));
  EXPECT_EQ(get_u64(obj, "exit_code", 0),
            static_cast<std::uint64_t>(
                status_exit_code(StatusCode::kOverloaded)));
  EXPECT_EQ(get_u64(obj, "retry_after_ms", 0), 250u);
}

TEST(SvcRender, ResultCarriesCurtailmentAndArtifactPaths) {
  const std::string reply =
      render_result(9, Status::Ok(), StatusCode::kDeadlineExceeded, 123,
                    "/r/job-9.json", "/o/out.txt");
  const Result<JsonValue> doc = parse_json(reply);
  ASSERT_TRUE(doc.ok()) << reply;
  const JsonObject& obj = doc.value().as_object();
  EXPECT_TRUE(get_bool(obj, "done", false));
  EXPECT_TRUE(get_bool(obj, "ok", false));
  EXPECT_EQ(get_u64(obj, "job_id", 0), 9u);
  EXPECT_EQ(get_string(obj, "curtailed"), "kDeadlineExceeded");
  EXPECT_EQ(get_u64(obj, "edges", 0), 123u);
  EXPECT_EQ(get_string(obj, "report"), "/r/job-9.json");
  EXPECT_EQ(get_string(obj, "out"), "/o/out.txt");
}

// ---------------------------------------------------------------- wire

/// A connected Unix-socket pair built through the svc API itself (no raw
/// syscalls in test code — the svc-confinement lint applies here too).
struct SocketPair {
  int a = -1;  // "client" end
  int b = -1;  // "daemon" end
  int listener = -1;

  static SocketPair open(const char* name) {
    SocketPair pair;
    const std::string path = temp_path(name);
    std::remove(path.c_str());
    Result<int> listener = listen_unix(path);
    EXPECT_TRUE(listener.ok()) << listener.status().to_string();
    pair.listener = listener.value();
    Result<int> client = connect_unix(path);
    EXPECT_TRUE(client.ok()) << client.status().to_string();
    pair.a = client.value();
    Result<int> accepted = accept_with_timeout(pair.listener, 2000);
    EXPECT_TRUE(accepted.ok() && accepted.value() >= 0);
    pair.b = accepted.value();
    std::remove(path.c_str());
    return pair;
  }

  ~SocketPair() {
    close_fd(a);
    close_fd(b);
    close_fd(listener);
  }
};

TEST(SvcWire, ControlFrameRoundTrips) {
  SocketPair pair = SocketPair::open("wire_control.sock");
  ASSERT_TRUE(write_control(pair.a, R"({"op":"ping"})").ok());
  const Result<Frame> frame = read_frame(pair.b, 1000);
  ASSERT_TRUE(frame.ok()) << frame.status().to_string();
  EXPECT_EQ(frame.value().type, FrameType::kControl);
  EXPECT_EQ(frame.value().text(), R"({"op":"ping"})");
}

TEST(SvcWire, EdgeStreamChunksAndReassembles) {
  // One frame's worth plus a remainder: must arrive as exactly two kEdges
  // frames that concatenate back to the original list. The writer runs on
  // its own thread because half a megabyte overflows the socket buffer.
  EdgeList edges;
  edges.reserve(kEdgesPerFrame + 5);
  for (std::size_t i = 0; i < kEdgesPerFrame + 5; ++i)
    edges.push_back({static_cast<std::uint32_t>(i),
                     static_cast<std::uint32_t>(i + 1)});

  SocketPair pair = SocketPair::open("wire_edges.sock");
  Status write_status;
  std::thread writer([&] { write_status = write_edge_frames(pair.a, edges); });

  EdgeList received;
  for (int frames = 0; frames < 2; ++frames) {
    const Result<Frame> frame = read_frame(pair.b, 5000);
    ASSERT_TRUE(frame.ok()) << frame.status().to_string();
    ASSERT_EQ(frame.value().type, FrameType::kEdges);
    const Result<EdgeList> chunk = decode_edges(frame.value());
    ASSERT_TRUE(chunk.ok());
    if (frames == 0) {
      EXPECT_EQ(chunk.value().size(), kEdgesPerFrame);
    }
    received.insert(received.end(), chunk.value().begin(),
                    chunk.value().end());
  }
  writer.join();
  EXPECT_TRUE(write_status.ok()) << write_status.to_string();
  EXPECT_EQ(received, edges);
}

TEST(SvcWire, OversizedLengthClaimIsRejectedBeforeAllocation) {
  SocketPair pair = SocketPair::open("wire_oversize.sock");
  const std::string payload(64, 'x');
  ASSERT_TRUE(
      write_frame(pair.a, FrameType::kControl, payload.data(), payload.size())
          .ok());
  const Result<Frame> frame = read_frame(pair.b, 1000, /*max_payload=*/16);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kClientProtocol);
}

TEST(SvcWire, UnknownFrameTypeIsClientProtocol) {
  SocketPair pair = SocketPair::open("wire_unknown.sock");
  ASSERT_TRUE(
      write_frame(pair.a, static_cast<FrameType>(7), "zz", 2).ok());
  const Result<Frame> frame = read_frame(pair.b, 1000);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kClientProtocol);
}

TEST(SvcWire, PeerHangupIsIoError) {
  SocketPair pair = SocketPair::open("wire_eof.sock");
  close_fd(pair.a);
  pair.a = -1;
  const Result<Frame> frame = read_frame(pair.b, 1000);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kIoError);
}

TEST(SvcWire, StalledPeerTripsThePollDeadline) {
  SocketPair pair = SocketPair::open("wire_stall.sock");
  const Result<Frame> frame = read_frame(pair.b, /*timeout_ms=*/50);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kClientProtocol);
}

TEST(SvcWire, DecodeRejectsRaggedEdgePayload) {
  Frame frame;
  frame.type = FrameType::kEdges;
  frame.payload.assign(7, 0);  // not a multiple of sizeof(Edge)
  const Result<EdgeList> edges = decode_edges(frame);
  ASSERT_FALSE(edges.ok());
  EXPECT_EQ(edges.status().code(), StatusCode::kClientProtocol);
}

TEST(SvcWire, ConnectToMissingSocketIsIoError) {
  const Result<int> fd = connect_unix(temp_path("no_such_daemon.sock"));
  ASSERT_FALSE(fd.ok());
  EXPECT_EQ(fd.status().code(), StatusCode::kIoError);
}

// -------------------------------------------------------- thread budget

TEST(SvcThreadBudget, ArbiterCapsGrantsAtThePool) {
  exec::ThreadArbiter arbiter(8);
  EXPECT_EQ(arbiter.acquire(4), 4);
  EXPECT_EQ(arbiter.acquire(100), 4);  // only 4 left
  EXPECT_EQ(arbiter.committed(), 8);
  arbiter.release(4);
  arbiter.release(4);
  EXPECT_EQ(arbiter.committed(), 0);
}

TEST(SvcThreadBudget, ZeroWantMeansEqualShareOfThePool) {
  exec::ThreadArbiter arbiter(8);
  const int first = arbiter.acquire(0);   // 1 job outstanding -> 8
  const int second = arbiter.acquire(0);  // 2 jobs -> 8/2, capped at free 0
  EXPECT_EQ(first, 8);
  EXPECT_EQ(second, 1);  // pool exhausted: progress floor
  arbiter.release(first);
  arbiter.release(second);
  const int a = arbiter.acquire(4);
  const int b = arbiter.acquire(0);  // 2 jobs -> want 4, 4 free
  EXPECT_EQ(a, 4);
  EXPECT_EQ(b, 4);
  arbiter.release(a);
  arbiter.release(b);
}

TEST(SvcThreadBudget, SaturatedPoolStillGrantsProgressFloor) {
  exec::ThreadArbiter arbiter(2);
  EXPECT_EQ(arbiter.acquire(2), 2);
  EXPECT_EQ(arbiter.acquire(1), 1);  // oversubscribes by one, never blocks
  arbiter.release(2);
  arbiter.release(1);
  EXPECT_EQ(arbiter.committed(), 0);
}

TEST(SvcThreadBudget, LeaseInstallsAndRestoresTheThreadLocal) {
  exec::ThreadArbiter arbiter(6);
  EXPECT_EQ(exec::current_thread_budget(), 0);
  {
    exec::ThreadBudgetLease lease(arbiter, 3);
    EXPECT_EQ(lease.threads(), 3);
    EXPECT_EQ(exec::current_thread_budget(), 3);
    {
      exec::ThreadBudgetLease nested(arbiter, 2);
      EXPECT_EQ(exec::current_thread_budget(), 2);
    }
    EXPECT_EQ(exec::current_thread_budget(), 3);
  }
  EXPECT_EQ(exec::current_thread_budget(), 0);
  EXPECT_EQ(arbiter.committed(), 0);
}

TEST(SvcThreadBudget, ParallelContextInheritsTheInstalledBudget) {
  exec::ParallelContext ctx;  // threads == 0: defer to the budget
  const int machine_default = ctx.resolved_threads();
  const int previous = exec::set_thread_budget(3);
  EXPECT_EQ(ctx.resolved_threads(), 3);
  ctx.threads = 2;  // explicit wins over the budget
  EXPECT_EQ(ctx.resolved_threads(), 2);
  (void)exec::set_thread_budget(previous);
  ctx.threads = 0;
  EXPECT_EQ(ctx.resolved_threads(), machine_default);
}

// ------------------------------------------------------------ scheduler

JobSpec quick_generate_spec(std::uint64_t seed = 1) {
  JobSpec spec;
  spec.op = JobSpec::Op::kGenerate;
  spec.powerlaw.n = 300;
  spec.powerlaw.dmin = 1;
  spec.powerlaw.dmax = 10;
  spec.swaps = 1;
  spec.seed = seed;
  return spec;
}

bool scheduler_idle(const Scheduler& scheduler) {
  const SchedulerStats s = scheduler.stats();
  return s.running == 0 && s.queued == 0;
}

TEST(SvcScheduler, RunsASubmittedJobToCompletion) {
  SchedulerConfig config;
  config.slots = 1;
  Scheduler scheduler(config);
  ASSERT_TRUE(scheduler.submit(quick_generate_spec(), /*client_fd=*/-1).ok());
  ASSERT_TRUE(wait_until([&] { return scheduler_idle(scheduler); }));
  const SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.failed, 0u);
  scheduler.shutdown(true);
}

TEST(SvcScheduler, FullQueueRejectsWithOverloaded) {
  SchedulerConfig config;
  config.slots = 1;
  config.queue_capacity = 1;
  Scheduler scheduler(config);

  JobSpec slow = quick_generate_spec();
  slow.inject_slow_ms = 400;  // holds the only slot
  ASSERT_TRUE(scheduler.submit(slow, -1).ok());
  ASSERT_TRUE(
      wait_until([&] { return scheduler.stats().running == 1; }, 2000));

  ASSERT_TRUE(scheduler.submit(quick_generate_spec(2), -1).ok());  // queued
  const Status third = scheduler.submit(quick_generate_spec(3), -1);
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.code(), StatusCode::kOverloaded);
  EXPECT_GT(scheduler.retry_after_ms(), 0u);

  ASSERT_TRUE(wait_until([&] { return scheduler_idle(scheduler); }));
  const SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.rejected, 1u);
  scheduler.shutdown(true);
}

TEST(SvcScheduler, MemoryCeilingRejectsAnInlineUploadAtAdmission) {
  SchedulerConfig config;
  config.slots = 1;
  config.memory_ceiling_bytes = 64;  // eight edges
  Scheduler scheduler(config);
  JobSpec upload;
  upload.op = JobSpec::Op::kShuffle;
  upload.edges_follow = true;
  for (std::uint32_t i = 0; i < 100; ++i) upload.edges.push_back({i, i + 1});
  const Status verdict = scheduler.submit(upload, -1);
  ASSERT_FALSE(verdict.ok());
  EXPECT_EQ(verdict.code(), StatusCode::kOverloaded);
  EXPECT_EQ(scheduler.stats().rejected, 1u);
  scheduler.shutdown(true);
}

TEST(SvcScheduler, ShutdownEvictsQueuedJobsAndDrainsRunningOnes) {
  SchedulerConfig config;
  config.slots = 1;
  config.queue_capacity = 4;
  Scheduler scheduler(config);
  JobSpec slow = quick_generate_spec();
  slow.inject_slow_ms = 300;
  ASSERT_TRUE(scheduler.submit(slow, -1).ok());
  ASSERT_TRUE(
      wait_until([&] { return scheduler.stats().running == 1; }, 2000));
  ASSERT_TRUE(scheduler.submit(quick_generate_spec(2), -1).ok());
  ASSERT_TRUE(scheduler.submit(quick_generate_spec(3), -1).ok());

  scheduler.shutdown(/*evict_queued=*/true);  // joins: running job finished
  const SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.evicted, 2u);

  // Post-shutdown admission is a typed eviction, not a hang.
  const Status late = scheduler.submit(quick_generate_spec(4), -1);
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.code(), StatusCode::kJobEvicted);
}

TEST(SvcScheduler, AFailingJobDoesNotPoisonItsNeighbors) {
  SchedulerConfig config;
  config.slots = 2;
  Scheduler scheduler(config);
  JobSpec doomed;
  doomed.op = JobSpec::Op::kShuffle;
  doomed.in_path = temp_path("no_such_input.txt");
  ASSERT_TRUE(scheduler.submit(doomed, -1).ok());
  ASSERT_TRUE(scheduler.submit(quick_generate_spec(), -1).ok());
  ASSERT_TRUE(wait_until([&] {
    const SchedulerStats s = scheduler.stats();
    return s.completed + s.failed == 2;
  }));
  const SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.failed, 1u);
  scheduler.shutdown(true);
}

// ----------------------------------------------------- crash recovery

/// Produces a genuine mid-run checkpoint (completed < total) the same way
/// a SIGKILLed daemon would have left one: by running the pipeline with a
/// snapshot cadence and an iteration cut.
void write_midrun_checkpoint(const std::string& ckpt_path) {
  DegreeDistribution dist({{2, 120}, {3, 80}, {5, 20}});
  GenerateConfig config;
  config.seed = 42;
  config.swap_iterations = 8;
  config.governance.enabled = true;
  config.governance.budget.max_swap_iterations = 4;
  config.governance.checkpoint_every = 2;
  config.governance.checkpoint_path = ckpt_path;
  const GenerateResult partial = generate_null_graph(dist, config);
  ASSERT_EQ(partial.report.curtailed_by(), StatusCode::kDeadlineExceeded);
}

TEST(SvcRecovery, SpoolResumesACheckpointedJobAndCommitsItsOutput) {
  const std::string spool = temp_path("svc_spool_ok");
  const std::string out = temp_path("svc_recovered_out.txt");
  std::filesystem::create_directories(spool);
  std::remove(out.c_str());
  write_midrun_checkpoint(spool + "/job-7.ckpt");

  JobSpec spec = quick_generate_spec();
  spec.checkpoint_every = 2;
  spec.out_path = out;
  {
    std::ofstream meta(spool + "/job-7.meta");
    meta << serialize_job_spec(spec);
  }

  SchedulerConfig config;
  config.spool_dir = spool;
  Scheduler scheduler(config);
  EXPECT_EQ(scheduler.recover_spool(), 1u);
  EXPECT_EQ(scheduler.stats().recovered, 1u);

  const Result<EdgeList> committed = try_read_edge_list_file(out);
  ASSERT_TRUE(committed.ok()) << committed.status().to_string();
  EXPECT_GT(committed.value().size(), 0u);

  // The spool entry is consumed: a second recovery pass finds nothing.
  EXPECT_EQ(scheduler.recover_spool(), 0u);
  scheduler.shutdown(true);
  std::remove(out.c_str());
}

TEST(SvcRecovery, TruncatedCheckpointFailsCleanlyWithoutOutput) {
  const std::string spool = temp_path("svc_spool_trunc");
  const std::string out = temp_path("svc_trunc_out.txt");
  std::filesystem::create_directories(spool);
  std::remove(out.c_str());
  const std::string ckpt = spool + "/job-8.ckpt";
  write_midrun_checkpoint(ckpt);
  std::filesystem::resize_file(ckpt, std::filesystem::file_size(ckpt) / 2);

  JobSpec spec = quick_generate_spec();
  spec.checkpoint_every = 2;
  spec.out_path = out;
  {
    std::ofstream meta(spool + "/job-8.meta");
    meta << serialize_job_spec(spec);
  }

  SchedulerConfig config;
  config.spool_dir = spool;
  Scheduler scheduler(config);
  EXPECT_EQ(scheduler.recover_spool(), 0u);
  const SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.recovered, 0u);
  EXPECT_EQ(stats.failed, 1u);  // cleanly failed, CRC refused the snapshot

  // No torn output was delivered, and the poisoned entry is gone.
  EXPECT_FALSE(std::filesystem::exists(out));
  EXPECT_FALSE(std::filesystem::exists(ckpt));
  EXPECT_FALSE(std::filesystem::exists(spool + "/job-8.meta"));
  scheduler.shutdown(true);
}

TEST(SvcRecovery, TornMetaFailsCleanly) {
  const std::string spool = temp_path("svc_spool_meta");
  std::filesystem::create_directories(spool);
  {
    std::ofstream meta(spool + "/job-9.meta");
    meta << R"({"op":"generate","n":)";  // cut mid-write
  }
  SchedulerConfig config;
  config.spool_dir = spool;
  Scheduler scheduler(config);
  EXPECT_EQ(scheduler.recover_spool(), 0u);
  EXPECT_EQ(scheduler.stats().failed, 1u);
  EXPECT_FALSE(std::filesystem::exists(spool + "/job-9.meta"));
  scheduler.shutdown(true);
}

// --------------------------------------------------------------- daemon

/// In-process daemon fixture: run_daemon on a background thread, stopped
/// through the protocol (or the signal flag) in TearDown.
class DaemonTest : public ::testing::Test {
 protected:
  void start(DaemonConfig config) {
    config.socket_path = socket_path_;
    config.stop_signal = &stop_signal_;
    std::remove(socket_path_.c_str());
    thread_ = std::thread([this, config] { report_ = run_daemon(config); });
    SubmitOptions options{socket_path_, 1000};
    ASSERT_TRUE(wait_until([&] { return ping(options).ok(); }))
        << "daemon never became reachable";
  }

  void TearDown() override {
    if (thread_.joinable()) {
      stop_signal_.store(SIGTERM);
      thread_.join();
    }
    std::remove(socket_path_.c_str());
  }

  std::string socket_path_ = temp_path("svc_daemon_test.sock");
  std::atomic<int> stop_signal_{0};
  std::thread thread_;
  Result<DaemonReport> report_{Status(StatusCode::kInternal, "never ran")};
};

TEST_F(DaemonTest, EndToEndSubmitStreamStatsShutdown) {
  DaemonConfig config;
  config.scheduler.slots = 2;
  start(config);
  SubmitOptions options{socket_path_, /*reply_timeout_ms=*/30000};

  const Result<SubmitOutcome> outcome =
      submit_job(options, quick_generate_spec());
  ASSERT_TRUE(outcome.ok()) << outcome.status().to_string();
  EXPECT_TRUE(outcome.value().admission.ok())
      << outcome.value().admission.to_string();
  EXPECT_TRUE(outcome.value().final_status.ok())
      << outcome.value().final_status.to_string();
  EXPECT_GT(outcome.value().job_id, 0u);
  EXPECT_GT(outcome.value().edge_count, 0u);
  EXPECT_EQ(outcome.value().edges.size(), outcome.value().edge_count);

  // The worker bumps `completed` moments after the client sees its stream
  // end, so poll the stats verb instead of asserting the instantaneous
  // value (the final daemon report below still asserts the exact count).
  ASSERT_TRUE(wait_until([&] {
    const Result<std::string> stats = request_stats(options);
    if (!stats.ok()) return false;
    const Result<JsonValue> parsed = parse_json(stats.value());
    return parsed.ok() &&
           get_u64(parsed.value().as_object(), "completed", 0) == 1;
  })) << "stats never reported the job as completed";

  ASSERT_TRUE(request_shutdown(options).ok());
  thread_.join();
  ASSERT_TRUE(report_.ok()) << report_.status().to_string();
  EXPECT_EQ(report_.value().stats.completed, 1u);
  EXPECT_GE(report_.value().connections, 3u);
}

TEST_F(DaemonTest, MalformedRequestGetsATypedProtocolReject) {
  start(DaemonConfig{});
  const Result<int> fd = connect_unix(socket_path_);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(write_control(fd.value(), "{definitely not json").ok());
  const Result<Frame> reply = read_frame(fd.value(), 5000);
  ASSERT_TRUE(reply.ok()) << reply.status().to_string();
  const Result<JsonValue> doc = parse_json(reply.value().text());
  ASSERT_TRUE(doc.ok());
  const JsonObject& obj = doc.value().as_object();
  EXPECT_FALSE(get_bool(obj, "ok", true));
  EXPECT_EQ(get_string(obj, "code"), "kClientProtocol");
  close_fd(fd.value());
}

TEST_F(DaemonTest, ZeroCapacityDaemonShedsEverySubmitWithRetryAfter) {
  DaemonConfig config;
  config.scheduler.slots = 1;
  config.scheduler.queue_capacity = 0;
  start(config);
  SubmitOptions options{socket_path_, 5000};
  const Result<SubmitOutcome> outcome =
      submit_job(options, quick_generate_spec());
  ASSERT_TRUE(outcome.ok()) << outcome.status().to_string();
  EXPECT_EQ(outcome.value().admission.code(), StatusCode::kOverloaded);
  EXPECT_GT(outcome.value().retry_after_ms, 0u);
}

// ------------------------------------------------- stats verb hardening

/// One-shot fake daemon: accepts a single connection, reads one control
/// frame, answers with `reply` verbatim, and closes. Exists to feed
/// request_stats() byte sequences a real daemon would never send.
class FakeStatsServer {
 public:
  explicit FakeStatsServer(std::string reply)
      : socket_path_(temp_path("svc_fake_stats.sock")),
        reply_(std::move(reply)) {
    const Result<int> listener = listen_unix(socket_path_);
    EXPECT_TRUE(listener.ok()) << listener.status().to_string();
    listen_fd_ = listener.value();
    thread_ = std::thread([this] {
      const Result<int> client = accept_with_timeout(listen_fd_, 5000);
      if (!client.ok() || client.value() < 0) return;
      (void)read_frame(client.value(), 5000);  // the {"op":"stats"} request
      (void)write_control(client.value(), reply_);
      close_fd(client.value());
    });
  }

  ~FakeStatsServer() {
    if (thread_.joinable()) thread_.join();
    close_fd(listen_fd_);
    std::remove(socket_path_.c_str());
  }

  const std::string& socket_path() const { return socket_path_; }

 private:
  std::string socket_path_;
  std::string reply_;
  int listen_fd_ = -1;
  std::thread thread_;
};

TEST(SvcClient, MalformedStatsReplyIsTypedClientProtocol) {
  // Regression: request_stats used to pass the daemon's frame through raw,
  // leaving every caller to re-parse defensively. Broken JSON must now
  // surface as a typed kClientProtocol, never as a "successful" string.
  FakeStatsServer server("{not a json object");
  const Result<std::string> stats =
      request_stats(SubmitOptions{server.socket_path(), 5000});
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kClientProtocol);
}

TEST(SvcClient, NonObjectStatsReplyIsTypedClientProtocol) {
  FakeStatsServer server("[1,2,3]");
  const Result<std::string> stats =
      request_stats(SubmitOptions{server.socket_path(), 5000});
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kClientProtocol);
}

TEST(SvcClient, ErrorStatsReplySurfacesTheEmbeddedStatus) {
  // The wire carries the numeric code_id (job.cpp render_reject), which the
  // client maps back through status_code_from_id.
  FakeStatsServer server(
      "{\"ok\":false,\"code\":\"kOverloaded\",\"code_id\":" +
      std::to_string(static_cast<int>(StatusCode::kOverloaded)) +
      ",\"message\":\"drowning\"}");
  const Result<std::string> stats =
      request_stats(SubmitOptions{server.socket_path(), 5000});
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kOverloaded);
  EXPECT_NE(stats.status().message().find("drowning"), std::string::npos);
}

// -------------------------------------------------- observability plumbing

TEST(SvcJobSpec, TraceIdRoundTripsThroughSerialize) {
  JobSpec spec = quick_generate_spec();
  spec.trace_id = 0x1122334455667788ULL;
  const Result<JsonValue> doc = parse_json(serialize_job_spec(spec));
  ASSERT_TRUE(doc.ok());
  const Result<JobSpec> back = parse_job_spec(doc.value().as_object());
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  EXPECT_EQ(back.value().trace_id, spec.trace_id);

  // trace_id 0 (untraced) must be omitted from the wire, not sent as 0.
  spec.trace_id = 0;
  EXPECT_EQ(serialize_job_spec(spec).find("trace_id"), std::string::npos);
}

TEST(SvcScheduler, StatsCarryUptimeAndTheExitCodeTally) {
  SchedulerConfig config;
  config.slots = 2;
  Scheduler scheduler(config);
  ASSERT_TRUE(scheduler.submit(quick_generate_spec(), -1).ok());
  JobSpec doomed;
  doomed.op = JobSpec::Op::kShuffle;
  doomed.in_path = temp_path("no_such_stats_input.txt");
  ASSERT_TRUE(scheduler.submit(doomed, -1).ok());
  ASSERT_TRUE(wait_until([&] {
    const SchedulerStats s = scheduler.stats();
    return s.completed + s.failed == 2;
  }));
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const SchedulerStats stats = scheduler.stats();
  EXPECT_GE(stats.uptime_ms, 1u);
  EXPECT_EQ(stats.spool_replayed, 0u);  // no spool configured, none replayed
  // One job per exit-code bucket: the success under 0, the failure under
  // its typed nonzero code; the buckets arrive sorted ascending.
  std::uint64_t total = 0;
  for (const auto& [code, count] : stats.jobs_by_exit_code) total += count;
  EXPECT_EQ(total, 2u);
  ASSERT_FALSE(stats.jobs_by_exit_code.empty());
  EXPECT_EQ(stats.jobs_by_exit_code.front().first, 0);
  EXPECT_EQ(stats.jobs_by_exit_code.front().second, 1u);
  EXPECT_GT(stats.jobs_by_exit_code.back().first, 0);
  scheduler.shutdown(true);
}

TEST_F(DaemonTest, TracedSubmitReturnsDaemonSpansAndRecordsClientSpans) {
  DaemonConfig config;
  config.scheduler.slots = 1;
  start(config);
  obs::TraceSink client_sink;
  SubmitOptions options{socket_path_, 30000};
  options.trace = &client_sink;
  JobSpec spec = quick_generate_spec();
  spec.trace_id = 0x77;

  const Result<SubmitOutcome> outcome = submit_job(options, spec);
  ASSERT_TRUE(outcome.ok()) << outcome.status().to_string();
  ASSERT_TRUE(outcome.value().final_status.ok())
      << outcome.value().final_status.to_string();

  // Daemon-side spans ride back in the result frame with absolute
  // monotonic timestamps: queue wait and the pipeline phases, at minimum.
  const std::vector<obs::TraceEventView>& spans =
      outcome.value().daemon_spans;
  ASSERT_FALSE(spans.empty());
  bool saw_queue_wait = false;
  for (const obs::TraceEventView& span : spans) {
    EXPECT_GT(span.ts_us, 0u);
    if (span.name == "queue wait") saw_queue_wait = true;
  }
  EXPECT_TRUE(saw_queue_wait);
  // The client recorded its own protocol spans into the borrowed sink.
  EXPECT_GT(client_sink.event_count(), 0u);
}

TEST_F(DaemonTest, UntracedSubmitCarriesNoSpans) {
  start(DaemonConfig{});
  const Result<SubmitOutcome> outcome = submit_job(
      SubmitOptions{socket_path_, 30000}, quick_generate_spec());
  ASSERT_TRUE(outcome.ok()) << outcome.status().to_string();
  EXPECT_TRUE(outcome.value().daemon_spans.empty());
}

TEST_F(DaemonTest, InlineUploadShuffleStreamsBackAPermutation) {
  start(DaemonConfig{});
  SubmitOptions options{socket_path_, 30000};
  JobSpec spec;
  spec.op = JobSpec::Op::kShuffle;
  spec.edges_follow = true;
  spec.swaps = 2;
  // A ring is connected and simple: shuffling preserves the degree
  // sequence (all 2s) and the edge count.
  for (std::uint32_t i = 0; i < 64; ++i)
    spec.edges.push_back({i, (i + 1) % 64});
  const Result<SubmitOutcome> outcome = submit_job(options, spec);
  ASSERT_TRUE(outcome.ok()) << outcome.status().to_string();
  ASSERT_TRUE(outcome.value().admission.ok())
      << outcome.value().admission.to_string();
  EXPECT_TRUE(outcome.value().final_status.ok())
      << outcome.value().final_status.to_string();
  EXPECT_EQ(outcome.value().edges.size(), 64u);
}

}  // namespace
}  // namespace nullgraph::svc
