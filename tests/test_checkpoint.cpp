// Checkpoint format and resume-semantics tests: CRC-guarded round trips,
// rejection of every corruption class (truncation, bit flips, bad magic,
// wrong version, length lies), and the headline contract — a run
// interrupted mid-swap and resumed from its snapshot produces a final edge
// list bit-identical to the uninterrupted run.

#include <gtest/gtest.h>
#include <omp.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/null_model.hpp"
#include "ds/degree_distribution.hpp"
#include "ds/edge_list.hpp"
#include "io/checkpoint.hpp"
#include "robustness/invariants.hpp"
#include "robustness/status.hpp"

namespace nullgraph {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

std::vector<unsigned char> slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::vector<unsigned char> bytes;
  int c;
  while ((c = std::fgetc(f)) != EOF)
    bytes.push_back(static_cast<unsigned char>(c));
  std::fclose(f);
  return bytes;
}

void spit(const std::string& path, const std::vector<unsigned char>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  if (!bytes.empty())  // fwrite(nullptr, ...) is UB even for zero bytes
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

Checkpoint sample_checkpoint() {
  Checkpoint ckpt;
  ckpt.swap_seed = 0x1234567890abcdefULL;
  ckpt.total_iterations = 40;
  ckpt.completed_iterations = 17;
  ckpt.chain_state = 0xfeedface12345678ULL;
  ckpt.degree_fingerprint = 0x0bad1deaULL;
  ckpt.edges = {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}};
  return ckpt;
}

TEST(Crc32, MatchesTheStandardCheckValue) {
  // The canonical CRC-32 (reflected, poly 0xEDB88320) check vector.
  const char* msg = "123456789";
  EXPECT_EQ(crc32_bytes(msg, 9), 0xCBF43926u);
  EXPECT_EQ(crc32_bytes(msg, 0), 0u);
}

TEST(Crc32, SeedParameterChainsIncrementally) {
  const char* msg = "123456789";
  const std::uint32_t whole = crc32_bytes(msg, 9);
  const std::uint32_t part = crc32_bytes(msg, 4);
  EXPECT_EQ(crc32_bytes(msg + 4, 5, part), whole);
}

TEST(Checkpoint, RoundTripPreservesEveryField) {
  const std::string path = temp_path("ckpt_roundtrip.bin");
  const Checkpoint original = sample_checkpoint();
  ASSERT_TRUE(write_checkpoint(path, original).ok());

  const Result<Checkpoint> loaded = try_read_checkpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  const Checkpoint& ckpt = loaded.value();
  EXPECT_EQ(ckpt.swap_seed, original.swap_seed);
  EXPECT_EQ(ckpt.total_iterations, original.total_iterations);
  EXPECT_EQ(ckpt.completed_iterations, original.completed_iterations);
  EXPECT_EQ(ckpt.chain_state, original.chain_state);
  EXPECT_EQ(ckpt.degree_fingerprint, original.degree_fingerprint);
  EXPECT_EQ(ckpt.edges, original.edges);
  std::remove(path.c_str());
}

TEST(Checkpoint, EmptyEdgeListRoundTrips) {
  const std::string path = temp_path("ckpt_empty.bin");
  Checkpoint original = sample_checkpoint();
  original.edges.clear();
  ASSERT_TRUE(write_checkpoint(path, original).ok());
  const Result<Checkpoint> loaded = try_read_checkpoint(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().edges.empty());
  std::remove(path.c_str());
}

TEST(Checkpoint, OverwriteReplacesAtomically) {
  // A second write through the same path must fully replace the first
  // (write goes to a temp file then renames over the target).
  const std::string path = temp_path("ckpt_overwrite.bin");
  Checkpoint first = sample_checkpoint();
  ASSERT_TRUE(write_checkpoint(path, first).ok());
  Checkpoint second = sample_checkpoint();
  second.completed_iterations = 33;
  second.edges.push_back({7, 9});
  ASSERT_TRUE(write_checkpoint(path, second).ok());
  const Result<Checkpoint> loaded = try_read_checkpoint(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().completed_iterations, 33u);
  EXPECT_EQ(loaded.value().edges.size(), second.edges.size());
  // No stray temp file left behind.
  std::FILE* tmp = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr);
  if (tmp != nullptr) std::fclose(tmp);
  std::remove(path.c_str());
}

TEST(Checkpoint, MissingFileIsIoErrorNotInvalid) {
  const Result<Checkpoint> loaded =
      try_read_checkpoint(temp_path("ckpt_does_not_exist.bin"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(Checkpoint, TruncationAtEveryBoundaryIsRejected) {
  const std::string path = temp_path("ckpt_trunc.bin");
  ASSERT_TRUE(write_checkpoint(path, sample_checkpoint()).ok());
  const std::vector<unsigned char> whole = slurp(path);
  // Cut mid-header, mid-payload, and one byte short of complete: every
  // prefix must be rejected as kCheckpointInvalid (never accepted, never
  // a crash).
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{7}, std::size_t{20}, whole.size() / 2,
        whole.size() - 1}) {
    spit(path, {whole.begin(), whole.begin() + keep});
    const Result<Checkpoint> loaded = try_read_checkpoint(path);
    ASSERT_FALSE(loaded.ok()) << "accepted a " << keep << "-byte prefix";
    EXPECT_EQ(loaded.status().code(), StatusCode::kCheckpointInvalid)
        << "prefix length " << keep;
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, EveryFlippedPayloadByteFailsTheCrc) {
  const std::string path = temp_path("ckpt_flip.bin");
  ASSERT_TRUE(write_checkpoint(path, sample_checkpoint()).ok());
  const std::vector<unsigned char> whole = slurp(path);
  // Flip one byte in each region the CRC covers: header fields, first
  // edge, last edge, and the CRC trailer itself.
  for (const std::size_t at : {std::size_t{12}, std::size_t{40},
                               std::size_t{60}, whole.size() - 4,
                               whole.size() - 1}) {
    std::vector<unsigned char> bad = whole;
    bad[at] ^= 0x40;
    spit(path, bad);
    const Result<Checkpoint> loaded = try_read_checkpoint(path);
    ASSERT_FALSE(loaded.ok()) << "accepted flip at byte " << at;
    EXPECT_EQ(loaded.status().code(), StatusCode::kCheckpointInvalid);
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, BadMagicAndBadVersionAreRejected) {
  const std::string path = temp_path("ckpt_magic.bin");
  ASSERT_TRUE(write_checkpoint(path, sample_checkpoint()).ok());
  const std::vector<unsigned char> whole = slurp(path);

  std::vector<unsigned char> not_ours = whole;
  not_ours[0] = 'X';
  spit(path, not_ours);
  Result<Checkpoint> loaded = try_read_checkpoint(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCheckpointInvalid);

  // The version field sits between magic and the CRC-covered region, so a
  // future-version file fails on version, not on checksum.
  std::vector<unsigned char> future = whole;
  future[8] = static_cast<unsigned char>(kCheckpointVersion + 1);
  spit(path, future);
  loaded = try_read_checkpoint(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCheckpointInvalid);
  EXPECT_NE(loaded.status().to_string().find("version"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Checkpoint, LyingEdgeCountIsRejectedBeforeAllocation) {
  const std::string path = temp_path("ckpt_count.bin");
  ASSERT_TRUE(write_checkpoint(path, sample_checkpoint()).ok());
  std::vector<unsigned char> bad = slurp(path);
  // The edge-count field is the sixth u64 after the 12-byte prologue;
  // claim an absurd count without growing the payload.
  bad[12 + 5 * 8] = 0xff;
  bad[12 + 5 * 8 + 7] = 0xff;
  spit(path, bad);
  const Result<Checkpoint> loaded = try_read_checkpoint(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCheckpointInvalid);
  std::remove(path.c_str());
}

// ------------------------------------------------------------ write retry

TEST(CheckpointRetry, TransientFailuresAreRetriedAway) {
  // Transient ENOSPC/EIO-class failures up to attempts-1 are absorbed by
  // the bounded-backoff policy: the write succeeds, snapshot valid.
  const std::string path = temp_path("ckpt_retry_once.bin");
  std::size_t failures = 2;
  CheckpointRetryPolicy policy;
  policy.backoff_ms = 1;
  policy.inject_io_failures = &failures;
  const Status written =
      write_checkpoint_with_retry(path, sample_checkpoint(), policy);
  EXPECT_TRUE(written.ok()) << written.to_string();
  EXPECT_EQ(failures, 0u);  // the injected failure was consumed
  const Result<Checkpoint> loaded = try_read_checkpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  EXPECT_EQ(loaded.value().edges, sample_checkpoint().edges);
  std::remove(path.c_str());
}

TEST(CheckpointRetry, PersistentFailureSurfacesTypedIoError) {
  // Failures on every attempt exhaust the bounded policy (3 attempts by
  // default); the caller gets a typed kIoError for its report, never an
  // abort.
  const std::string path = temp_path("ckpt_retry_twice.bin");
  std::remove(path.c_str());
  std::size_t failures = 3;
  CheckpointRetryPolicy policy;
  policy.backoff_ms = 1;
  policy.inject_io_failures = &failures;
  const Status written =
      write_checkpoint_with_retry(path, sample_checkpoint(), policy);
  ASSERT_FALSE(written.ok());
  EXPECT_EQ(written.code(), StatusCode::kIoError);
  EXPECT_EQ(failures, 0u);
  // Nothing was committed: the injected failures never touched the disk.
  const Result<Checkpoint> loaded = try_read_checkpoint(path);
  EXPECT_FALSE(loaded.ok());
}

TEST(CheckpointRetry, NoInjectionBehavesLikePlainWrite) {
  const std::string path = temp_path("ckpt_retry_clean.bin");
  const Status written = write_checkpoint_with_retry(path, sample_checkpoint());
  EXPECT_TRUE(written.ok()) << written.to_string();
  const Result<Checkpoint> loaded = try_read_checkpoint(path);
  EXPECT_TRUE(loaded.ok());
  std::remove(path.c_str());
}

// ------------------------------------------------------------------ resume

DegreeDistribution resume_dist() {
  return DegreeDistribution({{2, 120}, {3, 80}, {5, 20}});
}

TEST(Resume, InterruptedRunResumesBitIdentical) {
  // Determinism across interrupt/resume is a single-thread contract for
  // the parallel swap phase (DESIGN.md), so pin one thread for the
  // comparison.
  const int saved_threads = omp_get_max_threads();
  omp_set_num_threads(1);
  const std::string path = temp_path("ckpt_resume.bin");

  GenerateConfig base;
  base.seed = 42;
  base.swap_iterations = 8;
  const GenerateResult uninterrupted =
      generate_null_graph(resume_dist(), base);

  // Same run, but cut at iteration 4 with a snapshot every 2 iterations:
  // the last checkpoint lands exactly at the cut.
  GenerateConfig interrupted = base;
  interrupted.governance.enabled = true;
  interrupted.governance.budget.max_swap_iterations = 4;
  interrupted.governance.checkpoint_every = 2;
  interrupted.governance.checkpoint_path = path;
  const GenerateResult partial =
      generate_null_graph(resume_dist(), interrupted);
  ASSERT_EQ(partial.report.curtailed_by(), StatusCode::kDeadlineExceeded);
  ASSERT_EQ(partial.swap_stats.iterations.size(), 4u);

  const Result<Checkpoint> loaded = try_read_checkpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  ASSERT_EQ(loaded.value().completed_iterations, 4u);
  ASSERT_EQ(loaded.value().total_iterations, 8u);

  const GenerateResult resumed = resume_null_graph(loaded.value());
  EXPECT_TRUE(resumed.report.ok()) << resumed.report.summary();
  EXPECT_EQ(resumed.swap_stats.iterations.size(), 4u);  // the remaining half
  EXPECT_EQ(resumed.edges, uninterrupted.edges)
      << "resumed chain diverged from the uninterrupted run";

  omp_set_num_threads(saved_threads);
  std::remove(path.c_str());
}

TEST(Resume, FinalCheckpointResumesToSameGraphTrivially) {
  const int saved_threads = omp_get_max_threads();
  omp_set_num_threads(1);
  const std::string path = temp_path("ckpt_final.bin");

  GenerateConfig config;
  config.seed = 11;
  config.swap_iterations = 4;
  config.governance.enabled = true;
  config.governance.checkpoint_every = 100;  // only the final write fires
  config.governance.checkpoint_path = path;
  const GenerateResult full = generate_null_graph(resume_dist(), config);
  ASSERT_EQ(full.report.curtailed_by(), StatusCode::kOk);

  const Result<Checkpoint> loaded = try_read_checkpoint(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().completed_iterations, 4u);

  const GenerateResult resumed = resume_null_graph(loaded.value());
  EXPECT_EQ(resumed.swap_stats.iterations.size(), 0u);  // nothing left
  EXPECT_EQ(resumed.edges, full.edges);

  omp_set_num_threads(saved_threads);
  std::remove(path.c_str());
}

TEST(Resume, TamperedFingerprintIsRecordedAsInvalid) {
  Checkpoint ckpt = sample_checkpoint();
  ckpt.completed_iterations = ckpt.total_iterations;  // no work to redo
  ckpt.degree_fingerprint ^= 1;  // no longer matches ckpt.edges
  const GenerateResult resumed = resume_null_graph(ckpt);
  EXPECT_FALSE(resumed.report.ok());
  EXPECT_EQ(resumed.report.first_error().code(),
            StatusCode::kCheckpointInvalid);
}

TEST(Resume, StrictPolicyThrowsOnTamperedFingerprint) {
  Checkpoint ckpt = sample_checkpoint();
  ckpt.degree_fingerprint ^= 1;
  GenerateConfig config;
  config.guardrails.policy = RecoveryPolicy::kStrict;
  try {
    (void)resume_null_graph(ckpt, config);
    FAIL() << "strict resume accepted a tampered fingerprint";
  } catch (const StatusError& error) {
    EXPECT_EQ(error.code(), StatusCode::kCheckpointInvalid);
  }
}

}  // namespace
}  // namespace nullgraph
