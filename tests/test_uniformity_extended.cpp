// Uniformity validation for the DIRECTED and BIPARTITE swap chains, in the
// style of test_uniformity: enumerate a tiny space of simple realizations
// exhaustively and check visit frequencies; plus connectivity-conditioned
// generation behaviour.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>

#include "bipartite/bipartite.hpp"
#include "core/null_model.hpp"
#include "directed/directed_swap.hpp"
#include "util/rng.hpp"

namespace nullgraph {
namespace {

std::string arc_signature(ArcList arcs) {
  std::vector<EdgeKey> keys;
  for (const Arc& a : arcs) keys.push_back(a.key());
  std::sort(keys.begin(), keys.end());
  std::string signature;
  for (EdgeKey k : keys) signature += std::to_string(k) + ",";
  return signature;
}

double chi_square(const std::map<std::string, int>& counts, int trials,
                  std::size_t cells) {
  const double expected = static_cast<double>(trials) / cells;
  double stat = 0.0;
  for (const auto& [sig, count] : counts) {
    const double diff = count - expected;
    stat += diff * diff / expected;
  }
  stat += expected * static_cast<double>(cells - counts.size());
  return stat;
}

TEST(DirectedUniformity, ThreeCycleIsAKnownFixedPoint) {
  // The classic irreducibility gap of directed 2-swaps (Erdős, Miklós &
  // Toroczkai): a directed 3-cycle cannot be reversed — every proposal
  // creates a self-loop. The chain must stay put (documented limitation;
  // the library's docs point users with 3-cycle-sensitive spaces at it).
  const std::string start = arc_signature({{0, 1}, {1, 2}, {2, 0}});
  for (int t = 0; t < 50; ++t) {
    ArcList arcs{{0, 1}, {1, 2}, {2, 0}};
    const DirectedSwapStats stats = directed_swap_arcs(
        arcs, {.iterations = 10,
               .seed = static_cast<std::uint64_t>(t) * 31 + 5});
    EXPECT_EQ(arc_signature(arcs), start);
    EXPECT_EQ(stats.total_swapped(), 0u);
  }
}

TEST(DirectedUniformity, ParallelChainOnDerangements4) {
  // in = out = 1 on 4 vertices: 9 simple digraphs (derangements of 4).
  // The PARALLEL chain pairs all four arcs every iteration and, on this
  // space, either both pairs commit or both reject — so it can only
  // compose two swaps at a time and never leaves the three
  // "product-of-2-cycles" states (reaching the six 4-cycles needs a lone
  // swap). Another documented small-space ergodicity artifact of the
  // all-pairs-parallel scheme; within its reachable class the chain is
  // uniform.
  const int trials = 9000;
  std::map<std::string, int> counts;
  for (int t = 0; t < trials; ++t) {
    ArcList arcs{{0, 1}, {1, 0}, {2, 3}, {3, 2}};
    directed_swap_arcs(arcs,
                       {.iterations = 30,
                        .seed = static_cast<std::uint64_t>(t) * 17 + 3});
    ++counts[arc_signature(std::move(arcs))];
  }
  EXPECT_EQ(counts.size(), 3u);
  // chi2(2 dof) at alpha ~ 1e-4 is about 18.4.
  EXPECT_LT(chi_square(counts, trials, 3), 18.4);
}

TEST(BipartiteUniformity, TwoByTwoCheckerboardIsParityPeriodic) {
  // Left (1,1) / right (1,1): the two perfect matchings. Every iteration
  // commits the unique swap (acceptance is 1 on permutation matrices), so
  // the chain alternates deterministically: fixed iteration counts land on
  // a single parity class. Pin the periodicity...
  const std::string start = arc_signature({{0, 0}, {1, 1}});
  for (int t = 0; t < 20; ++t) {
    ArcList even_edges{{0, 0}, {1, 1}};
    bipartite_swap(even_edges, 2, 20, static_cast<std::uint64_t>(t) + 1);
    EXPECT_EQ(arc_signature(std::move(even_edges)), start) << t;
    ArcList odd_edges{{0, 0}, {1, 1}};
    bipartite_swap(odd_edges, 2, 21, static_cast<std::uint64_t>(t) + 1);
    EXPECT_NE(arc_signature(std::move(odd_edges)), start) << t;
  }
}

TEST(BipartiteUniformity, ThreeMatchingsWithRandomizedParity) {
  // Left (1,1,1) / right (1,1,1): 6 matchings. One swap commits per
  // iteration (m = 3 -> one pair) and each flips permutation parity, so a
  // fixed horizon samples one parity class; alternating odd/even horizons
  // covers both classes, and the visit distribution must be uniform over
  // all 6 states.
  const int trials = 6000;
  std::map<std::string, int> counts;
  for (int t = 0; t < trials; ++t) {
    ArcList edges{{0, 0}, {1, 1}, {2, 2}};
    bipartite_swap(edges, 3, 24 + (t % 2),
                   static_cast<std::uint64_t>(t) * 7 + 2);
    ++counts[arc_signature(std::move(edges))];
  }
  EXPECT_EQ(counts.size(), 6u);
  // chi2(5) at 1e-4 ~ 25.7
  EXPECT_LT(chi_square(counts, trials, 6), 25.7);
}

TEST(TriangleReversal, UnsticksTheThreeCycle) {
  // With reversals in the mix, the two 3-cycle orientations interconvert
  // and are sampled uniformly — the gap pinned above, closed.
  const int trials = 4000;
  std::map<std::string, int> counts;
  for (int t = 0; t < trials; ++t) {
    ArcList arcs{{0, 1}, {1, 2}, {2, 0}};
    directed_swap_arcs_complete(
        arcs, {.iterations = 6,
               .seed = static_cast<std::uint64_t>(t) * 101 + 7});
    ++counts[arc_signature(std::move(arcs))];
  }
  EXPECT_EQ(counts.size(), 2u);
  EXPECT_LT(chi_square(counts, trials, 2), 15.1);  // chi2(1) at 1e-4
}

TEST(TriangleReversal, PreservesDegreesAndSimplicity) {
  // A denser digraph with many triangles: reversals must fire and keep
  // every marginal exact.
  Xoshiro256ss rng(5);
  ArcList arcs;
  const std::size_t n = 60;
  for (VertexId u = 0; u < n; ++u)
    for (VertexId v = 0; v < n; ++v)
      if (u != v && rng.uniform() < 0.2) arcs.push_back({u, v});
  const auto in_before = in_degrees_of(arcs, n);
  const auto out_before = out_degrees_of(arcs, n);
  const std::size_t reversed = reverse_directed_triangles(arcs, 9, 5000);
  EXPECT_GT(reversed, 0u);
  EXPECT_EQ(in_degrees_of(arcs, n), in_before);
  EXPECT_EQ(out_degrees_of(arcs, n), out_before);
  EXPECT_TRUE(is_simple(arcs));
}

TEST(TriangleReversal, NoTrianglesMeansNoChanges) {
  // Bipartite-style digraph (all arcs low -> high): triangle-free.
  ArcList arcs{{0, 5}, {1, 6}, {2, 7}, {0, 6}, {1, 7}};
  const ArcList before = arcs;
  EXPECT_EQ(reverse_directed_triangles(arcs, 3, 1000), 0u);
  EXPECT_TRUE(same_arc_multiset(arcs, before));
}

TEST(ConnectedGeneration, ReportsAndDeliversConnectivity) {
  // Dense-enough distribution: connectivity should arrive within attempts.
  const DegreeDistribution dist({{4, 200}, {8, 50}});
  GenerateConfig config;
  config.seed = 1;
  config.swap_iterations = 2;
  const ConnectedGenerateResult outcome =
      generate_connected_null_graph(dist, config);
  EXPECT_TRUE(outcome.connected);
  EXPECT_GE(outcome.attempts_used, 1u);
  EXPECT_TRUE(is_simple(outcome.result.edges));
}

TEST(ConnectedGeneration, SparseInputMayExhaustAttempts) {
  // Average degree ~1: a connected realization is essentially impossible;
  // the call must terminate and report failure honestly.
  const DegreeDistribution dist({{1, 1000}});
  GenerateConfig config;
  config.seed = 2;
  config.swap_iterations = 1;
  const ConnectedGenerateResult outcome =
      generate_connected_null_graph(dist, config, 3);
  EXPECT_FALSE(outcome.connected);
  EXPECT_EQ(outcome.attempts_used, 3u);
}

}  // namespace
}  // namespace nullgraph
