#include "analysis/paths.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "gen/havel_hakimi.hpp"
#include "skip/erdos_renyi.hpp"

namespace nullgraph {
namespace {

TEST(BfsDistances, PathGraph) {
  const CsrGraph graph(EdgeList{{0, 1}, {1, 2}, {2, 3}});
  const auto distance = bfs_distances(graph, 0);
  EXPECT_EQ(distance, (std::vector<std::uint32_t>{0, 1, 2, 3}));
}

TEST(BfsDistances, UnreachableComponent) {
  const CsrGraph graph(EdgeList{{0, 1}, {2, 3}}, 4);
  const auto distance = bfs_distances(graph, 0);
  EXPECT_EQ(distance[1], 1u);
  EXPECT_EQ(distance[2], kUnreachable);
  EXPECT_EQ(distance[3], kUnreachable);
}

TEST(BfsDistances, SourceIsZero) {
  const CsrGraph graph(EdgeList{{0, 1}});
  EXPECT_EQ(bfs_distances(graph, 1)[1], 0u);
}

TEST(SampledPathStats, CompleteGraphAllOnes) {
  const DegreeDistribution dist({{5, 6}});  // K6
  const CsrGraph graph(havel_hakimi(dist));
  const PathStats stats = sampled_path_stats(graph, 100);
  EXPECT_DOUBLE_EQ(stats.average_distance, 1.0);
  EXPECT_EQ(stats.max_distance, 1u);
  EXPECT_EQ(stats.reachable_pairs, 6u * 5u);  // exact mode: all sources
}

TEST(SampledPathStats, PathGraphExact) {
  // Path 0-1-2-3: distances sum per source 0: 1+2+3; by symmetry total
  // = 2*(6+4) = 20 over 12 ordered pairs -> 5/3.
  const CsrGraph graph(EdgeList{{0, 1}, {1, 2}, {2, 3}});
  const PathStats stats = sampled_path_stats(graph, 100);
  EXPECT_NEAR(stats.average_distance, 20.0 / 12.0, 1e-12);
  EXPECT_EQ(stats.max_distance, 3u);
}

TEST(SampledPathStats, EmptyGraph) {
  const CsrGraph graph(EdgeList{}, 0);
  const PathStats stats = sampled_path_stats(graph, 10);
  EXPECT_EQ(stats.reachable_pairs, 0u);
}

TEST(SampledPathStats, SamplingApproximatesExact) {
  const CsrGraph graph(erdos_renyi(1500, 0.01, 3), 1500);
  const PathStats exact = sampled_path_stats(graph, 1u << 30);
  const PathStats sampled = sampled_path_stats(graph, 200, 9);
  EXPECT_NEAR(sampled.average_distance, exact.average_distance,
              0.05 * exact.average_distance);
}

TEST(SampledPathStats, SmallWorldScaling) {
  // ER average distance ~ ln(n)/ln(avg_degree): doubling n should add
  // roughly a constant, not double the distance.
  const CsrGraph small(erdos_renyi(1000, 8.0 / 999, 4), 1000);
  const CsrGraph large(erdos_renyi(4000, 8.0 / 3999, 4), 4000);
  const double d_small = sampled_path_stats(small, 100, 1).average_distance;
  const double d_large = sampled_path_stats(large, 100, 1).average_distance;
  EXPECT_GT(d_large, d_small);
  EXPECT_LT(d_large, 1.8 * d_small);
}

}  // namespace
}  // namespace nullgraph
