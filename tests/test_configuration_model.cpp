#include "gen/configuration_model.hpp"

#include <gtest/gtest.h>

#include "gen/datasets.hpp"

namespace nullgraph {
namespace {

TEST(ConfigurationMultigraph, ExactDegreeSequence) {
  const DegreeDistribution dist({{1, 100}, {3, 40}, {10, 5}});
  const EdgeList edges = configuration_multigraph(dist, 7);
  EXPECT_EQ(edges.size(), dist.num_edges());
  const auto degrees = degrees_of(edges, dist.num_vertices());
  const auto target = dist.to_degree_sequence();
  for (std::size_t v = 0; v < target.size(); ++v)
    EXPECT_EQ(degrees[v], target[v]);
}

TEST(ConfigurationMultigraph, DifferentSeedsDiffer) {
  const DegreeDistribution dist({{2, 200}});
  EXPECT_FALSE(same_edge_multiset(configuration_multigraph(dist, 1),
                                  configuration_multigraph(dist, 2)));
}

TEST(ErasedConfiguration, SimpleOutput) {
  const DegreeDistribution dist({{1, 100}, {3, 40}, {10, 5}});
  const EdgeList edges = erased_configuration(dist, 7);
  EXPECT_TRUE(is_simple(edges));
  EXPECT_LE(edges.size(), dist.num_edges());
}

TEST(RepeatedConfiguration, SucceedsOnSparseEasyInput) {
  // Low density, flat degrees: simple outcome is likely within attempts.
  const DegreeDistribution dist({{2, 500}});
  const auto result = repeated_configuration(dist, 3, 200);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(is_simple(*result));
  EXPECT_EQ(result->size(), dist.num_edges());
}

TEST(RepeatedConfiguration, FailsOnSkewedInput) {
  // Section II-B: expected multi-edges > 1 makes success vanishing; with a
  // scaled as20-like input and few attempts the model gives up.
  const DegreeDistribution dist = as20_like();
  const auto result = repeated_configuration(dist, 3, 5);
  EXPECT_FALSE(result.has_value());
}

TEST(ConfigurationMultigraph, SkewedInputsProduceMultiEdges) {
  // The motivating observation: skewed degrees make collisions common.
  const DegreeDistribution dist = as20_like();
  const SimplicityCensus result = census(configuration_multigraph(dist, 11));
  EXPECT_GT(result.multi_edges + result.self_loops, 0u);
}

}  // namespace
}  // namespace nullgraph
