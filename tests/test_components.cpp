#include "analysis/components.hpp"

#include <gtest/gtest.h>

#include "core/double_edge_swap.hpp"
#include "gen/havel_hakimi.hpp"
#include "skip/erdos_renyi.hpp"

namespace nullgraph {
namespace {

TEST(UnionFind, BasicMerging) {
  UnionFind sets(5);
  EXPECT_EQ(sets.num_sets(), 5u);
  EXPECT_TRUE(sets.unite(0, 1));
  EXPECT_FALSE(sets.unite(1, 0));  // already merged
  EXPECT_TRUE(sets.unite(2, 3));
  EXPECT_EQ(sets.num_sets(), 3u);
  EXPECT_EQ(sets.find(0), sets.find(1));
  EXPECT_NE(sets.find(0), sets.find(2));
  EXPECT_EQ(sets.size_of(0), 2u);
  EXPECT_EQ(sets.size_of(4), 1u);
}

TEST(UnionFind, ChainMerge) {
  UnionFind sets(100);
  for (std::uint32_t v = 0; v + 1 < 100; ++v) sets.unite(v, v + 1);
  EXPECT_EQ(sets.num_sets(), 1u);
  EXPECT_EQ(sets.size_of(50), 100u);
}

TEST(ConnectedComponents, TwoTrianglesAndIsolated) {
  const EdgeList edges{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}};
  const ComponentSummary summary = connected_components(edges, 7);
  EXPECT_EQ(summary.num_components, 3u);  // two triangles + vertex 6
  EXPECT_EQ(summary.largest_size, 3u);
  EXPECT_EQ(summary.component[0], summary.component[2]);
  EXPECT_NE(summary.component[0], summary.component[3]);
  EXPECT_NE(summary.component[6], summary.component[0]);
}

TEST(ConnectedComponents, EmptyGraph) {
  const ComponentSummary summary = connected_components({}, 0);
  EXPECT_EQ(summary.num_components, 0u);
  EXPECT_TRUE(summary.component.empty());
}

TEST(IsConnected, PathAndBrokenPath) {
  EXPECT_TRUE(is_connected({{0, 1}, {1, 2}, {2, 3}}, 4));
  EXPECT_FALSE(is_connected({{0, 1}, {2, 3}}, 4));
  EXPECT_FALSE(is_connected({}, 0));
  EXPECT_FALSE(is_connected({{0, 1}}, 3));  // isolated vertex 2
}

TEST(IsConnected, DenseErdosRenyiIsConnected) {
  // p well above the ln(n)/n threshold.
  EXPECT_TRUE(is_connected(erdos_renyi(2000, 0.01, 4), 2000));
}

TEST(ConnectedComponents, SwapsCanDisconnectButPreserveCounts) {
  // Start from a connected HH realization; swaps may split it (the reason
  // connectivity-conditioned pipelines resample), but component vertex
  // counts always total n.
  const DegreeDistribution dist({{2, 100}});  // one big cycle under HH
  EdgeList edges = havel_hakimi(dist);
  swap_edges(edges, {.iterations = 5, .seed = 8});
  const ComponentSummary summary = connected_components(edges, 100);
  std::vector<std::size_t> sizes(summary.num_components, 0);
  for (std::uint32_t c : summary.component) ++sizes[c];
  std::size_t total = 0;
  for (std::size_t s : sizes) total += s;
  EXPECT_EQ(total, 100u);
  EXPECT_GE(summary.num_components, 1u);
}

}  // namespace
}  // namespace nullgraph
