// Telemetry subsystem tests (DESIGN.md §7): metric instruments and their
// striped merge, the phase-timing sink aggregates, trace emission, the
// windowed acceptance series, and — most load-bearing — a byte-exact
// golden test over the --report-json schema. The golden string IS the
// schema contract: report_version must be bumped and the golden updated
// together on any breaking change, and new keys may only be appended.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/null_model.hpp"
#include "exec/phase_timing.hpp"
#include "lfr/lfr.hpp"
#include "obs/event_log.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

namespace nullgraph::obs {
namespace {

// ---------------------------------------------------------------- metrics

TEST(Counter, MergesStripesAcrossThreads) {
  Counter c("test");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add(1);
    });
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(Gauge, LastWriterWins) {
  Gauge g("test");
  EXPECT_EQ(g.value(), 0);
  g.set(42);
  g.set(-7);
  EXPECT_EQ(g.value(), -7);
}

TEST(Histogram, BucketBoundariesAreInclusiveUpper) {
  Histogram h("test", /*lower=*/1, {2, 4, 8});
  h.record(1);  // lower itself -> first bucket
  h.record(2);  // == edge 0 -> first bucket (inclusive upper)
  h.record(3);  // (2, 4] -> second bucket
  h.record(4);
  h.record(8);  // == last edge -> last bucket, NOT overflow
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.counts, (std::vector<std::uint64_t>{2, 2, 1}));
  EXPECT_EQ(snap.underflow, 0u);
  EXPECT_EQ(snap.overflow, 0u);
  EXPECT_EQ(snap.count, 5u);
  EXPECT_EQ(snap.sum, 1 + 2 + 3 + 4 + 8);
}

TEST(Histogram, UnderflowAndOverflow) {
  Histogram h("test", /*lower=*/10, {20, 30});
  h.record(9);    // below lower
  h.record(-5);   // far below
  h.record(31);   // above last edge
  h.record(1000);
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.underflow, 2u);
  EXPECT_EQ(snap.overflow, 2u);
  EXPECT_EQ(snap.counts, (std::vector<std::uint64_t>{0, 0}));
  EXPECT_EQ(snap.count, 4u);
  EXPECT_EQ(snap.sum, 9 - 5 + 31 + 1000);
}

TEST(Histogram, EmptySnapshotIsAllZero) {
  Histogram h("test", 0, {1, 2, 3});
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum, 0);
  EXPECT_EQ(snap.underflow, 0u);
  EXPECT_EQ(snap.overflow, 0u);
  EXPECT_EQ(snap.counts, (std::vector<std::uint64_t>{0, 0, 0}));
  EXPECT_EQ(snap.edges, (std::vector<std::int64_t>{1, 2, 3}));
}

TEST(MetricsRegistry, GetOrCreateReturnsStableHandles) {
  MetricsRegistry registry;
  Counter* a = registry.counter("x");
  Counter* b = registry.counter("x");
  EXPECT_EQ(a, b);
  // A histogram's first registration fixes its buckets.
  Histogram* h1 = registry.histogram("h", 0, {1, 2});
  Histogram* h2 = registry.histogram("h", 99, {7});
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h1->snapshot().edges, (std::vector<std::int64_t>{1, 2}));
}

TEST(MetricsRegistry, SnapshotSortsInstrumentsByName) {
  MetricsRegistry registry;
  registry.counter("zeta")->add(1);
  registry.counter("alpha")->add(2);
  registry.gauge("mid")->set(5);
  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "alpha");
  EXPECT_EQ(snap.counters[0].value, 2u);
  EXPECT_EQ(snap.counters[1].name, "zeta");
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].value, 5);
  EXPECT_FALSE(snap.empty());
  EXPECT_TRUE(MetricsSnapshot{}.empty());
}

// ----------------------------------------------------------- phase timing

TEST(PhaseTimingSink, AggregatesByPhaseAndTracksSlowestLoop) {
  exec::PhaseTimingSink sink;
  exec::LoopSample a;
  a.wall_ms = 5.0;
  a.chunks = 4;
  a.threads = 2;
  a.chunk_ms_min = 1.0;
  a.chunk_ms_max = 2.0;
  a.chunk_ms_sum = 6.0;
  a.chunk_samples = 4;
  exec::LoopSample b;
  b.wall_ms = 3.0;
  b.chunks = 2;
  b.chunks_skipped = 1;
  b.threads = 2;
  b.chunk_ms_min = 0.5;
  b.chunk_ms_max = 4.0;
  b.chunk_ms_sum = 4.5;
  b.chunk_samples = 2;
  sink.record("swaps", a);
  sink.record("swaps", b);
  sink.record("other", b);

  const std::vector<exec::PhaseTiming> rows = sink.snapshot();
  ASSERT_EQ(rows.size(), 2u);
  const exec::PhaseTiming& swaps = rows[0];
  EXPECT_EQ(swaps.phase, "swaps");
  EXPECT_DOUBLE_EQ(swaps.wall_ms, 8.0);
  EXPECT_DOUBLE_EQ(swaps.max_loop_wall_ms, 5.0);
  EXPECT_EQ(swaps.loops, 2u);
  EXPECT_EQ(swaps.chunks, 6u);
  EXPECT_EQ(swaps.chunks_skipped, 1u);
  EXPECT_DOUBLE_EQ(swaps.chunk_ms_min, 0.5);
  EXPECT_DOUBLE_EQ(swaps.chunk_ms_max, 4.0);
  EXPECT_EQ(swaps.chunk_samples, 6u);
  EXPECT_DOUBLE_EQ(swaps.chunk_ms_mean(), 10.5 / 6.0);
  EXPECT_DOUBLE_EQ(swaps.load_imbalance(), 4.0 / (10.5 / 6.0));
}

TEST(PhaseTimingSink, LoopWithoutChunkTimingLeavesAggregatesUntouched) {
  exec::PhaseTimingSink sink;
  exec::LoopSample timed;
  timed.wall_ms = 1.0;
  timed.chunk_ms_min = 2.0;
  timed.chunk_ms_max = 3.0;
  timed.chunk_ms_sum = 5.0;
  timed.chunk_samples = 2;
  exec::LoopSample untimed;  // chunk_samples == 0: no per-chunk data
  untimed.wall_ms = 9.0;
  sink.record("p", timed);
  sink.record("p", untimed);
  const exec::PhaseTiming row = sink.snapshot().front();
  EXPECT_DOUBLE_EQ(row.chunk_ms_min, 2.0);
  EXPECT_DOUBLE_EQ(row.chunk_ms_max, 3.0);
  EXPECT_EQ(row.chunk_samples, 2u);
  EXPECT_DOUBLE_EQ(row.max_loop_wall_ms, 9.0);
}

TEST(PhaseTiming, LoadImbalanceIsZeroWithoutSamples) {
  exec::PhaseTiming row;
  EXPECT_DOUBLE_EQ(row.load_imbalance(), 0.0);
  EXPECT_DOUBLE_EQ(row.chunk_ms_mean(), 0.0);
}

// ------------------------------------------------------------------ trace

TEST(TraceSpan, NullSinkIsANoOp) {
  // The zero-cost contract: spans without a sink must be safe and do
  // nothing (this is the compiled-in-but-disabled path).
  { TraceSpan span(nullptr, "unobserved"); }
  SUCCEED();
}

TEST(TraceSink, EmitsValidChromeTraceJson) {
  TraceSink sink;
  {
    TraceSpan span(&sink, "outer");
    TraceSpan inner(&sink, "inner");
  }
  sink.instant("marker");
  EXPECT_EQ(sink.event_count(), 3u);
  const std::string json = sink.to_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);  // metadata
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"marker\""), std::string::npos);
}

// --------------------------------------------------- windowed acceptance

TEST(WindowedAcceptance, TrailingWindowSums) {
  const std::vector<std::size_t> attempted = {10, 10, 10, 10};
  const std::vector<std::size_t> swapped = {10, 0, 10, 0};
  const std::vector<double> w = windowed_acceptance(attempted, swapped, 2);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_DOUBLE_EQ(w[0], 1.0);        // 10/10
  EXPECT_DOUBLE_EQ(w[1], 0.5);        // 10/20
  EXPECT_DOUBLE_EQ(w[2], 0.5);        // (0+10)/20
  EXPECT_DOUBLE_EQ(w[3], 0.5);        // (10+0)/20
}

TEST(WindowedAcceptance, ZeroAttemptsAndZeroWindow) {
  const std::vector<double> w =
      windowed_acceptance({0, 4}, {0, 2}, /*window=*/0);  // clamped to 1
  ASSERT_EQ(w.size(), 2u);
  EXPECT_DOUBLE_EQ(w[0], 0.0);  // no attempts -> 0, not NaN
  EXPECT_DOUBLE_EQ(w[1], 0.5);
}

// ----------------------------------------------------------- run reports

// Byte-exact golden over a config-only report. Keys, their order, and the
// compact formatting are all schema: if this fails, either bump
// kReportVersion (breaking change) or append the new key and extend the
// golden (compatible change).
TEST(RunReport, GoldenConfigOnlySchema) {
  RunReportInputs inputs;
  inputs.command = "generate";
  inputs.argv = {"nullgraph", "generate", "--powerlaw"};
  inputs.seed = 7;
  inputs.threads = 4;
  inputs.swap_iterations_requested = 3;
  const std::string expected =
      "{\"report_version\":1,\"tool\":\"nullgraph\",\"command\":\"generate\","
      "\"config\":{\"seed\":7,\"threads\":4,\"swap_iterations\":3,"
      "\"argv\":[\"nullgraph\",\"generate\",\"--powerlaw\"]},"
      "\"phase_seconds\":{},\"exec_phases\":[],\"checks\":[],"
      "\"curtailments\":[],"
      "\"recovery\":{\"retries_used\":0,\"repair\":{\"loops_erased\":0,"
      "\"duplicates_erased\":0,\"surplus_edges_removed\":0,\"edges_added\":0,"
      "\"rewired_patches\":0,\"residual_deficit\":0},"
      "\"probability_entries_sanitized\":0},"
      "\"faults_injected\":{\"edges_dropped\":0,\"edges_duplicated\":0,"
      "\"self_loops_added\":0,\"prob_entries_corrupted\":0},"
      "\"metrics\":{\"counters\":[],\"gauges\":[],\"histograms\":[]},"
      "\"degradations\":[],"
      "\"spill\":{\"spilled\":false,\"dir\":\"\",\"shard_count\":0,"
      "\"edges_on_disk\":0,\"shards_written\":0,\"shards_reused\":0,"
      "\"max_shard_edges\":0}}";
  EXPECT_EQ(render_run_report(inputs), expected);
}

TEST(RunReport, EscapesArgvStrings) {
  RunReportInputs inputs;
  inputs.command = "generate";
  inputs.argv = {"quote\"back\\slash", "tab\there"};
  const std::string json = render_run_report(inputs);
  EXPECT_NE(json.find("\"quote\\\"back\\\\slash\""), std::string::npos);
  EXPECT_NE(json.find("\"tab\\there\""), std::string::npos);
}

TEST(RunReport, SerializesSyntheticSwapChain) {
  GenerateResult result;
  SwapIterationStats it1;
  it1.attempted = 100;
  it1.swapped = 80;
  it1.rejected_existing = 15;
  it1.rejected_loop = 5;
  SwapIterationStats it2;
  it2.attempted = 100;
  it2.swapped = 60;
  it2.rejected_existing = 30;
  it2.rejected_loop = 10;
  it2.input_multi_edges = 2;
  result.swap_stats.iterations = {it1, it2};
  result.swap_stats.edges_ever_swapped = 77;
  result.report.faults_injected.loops_added = 3;
  result.report.retries_used = 1;

  RunReportInputs inputs;
  inputs.command = "shuffle";
  inputs.swap_iterations_requested = 2;
  inputs.result = &result;
  const std::string json = render_run_report(inputs);

  EXPECT_NE(json.find("\"swap_chain\":{\"iterations_requested\":2,"
                      "\"iterations_run\":2,\"total_swapped\":140,"
                      "\"overall_acceptance\":0.7,\"stop_reason\":\"kOk\","
                      "\"edges_ever_swapped\":77"),
            std::string::npos);
  EXPECT_NE(json.find("\"acceptance\":[0.8,0.6]"), std::string::npos);
  EXPECT_NE(json.find("\"windowed_acceptance\":[0.8,0.7]"),
            std::string::npos);
  EXPECT_NE(json.find("\"rejected_existing\":[15,30]"), std::string::npos);
  EXPECT_NE(json.find("\"input_multi_edges\":[0,2]"), std::string::npos);
  EXPECT_NE(json.find("\"self_loops_added\":3"), std::string::npos);
  EXPECT_NE(json.find("\"retries_used\":1"), std::string::npos);
}

TEST(RunReport, SerializesLfrBlock) {
  LfrGraph graph;
  graph.edges = {{0, 1}, {1, 2}};
  graph.num_communities = 4;
  graph.communities_completed = 4;
  graph.achieved_mu = 0.25;
  graph.merged_duplicates = 1;

  RunReportInputs inputs;
  inputs.command = "lfr";
  inputs.lfr = &graph;
  const std::string json = render_run_report(inputs);
  EXPECT_NE(json.find("\"lfr\":{\"edges\":2,\"num_communities\":4,"
                      "\"communities_completed\":4,\"achieved_mu\":0.25,"
                      "\"merged_duplicates\":1,\"curtailed\":\"kOk\"}"),
            std::string::npos);
}

TEST(RunReport, MetricsSectionRendersAllInstrumentKinds) {
  MetricsRegistry registry;
  registry.counter("c")->add(5);
  registry.gauge("g")->set(-3);
  Histogram* h = registry.histogram("h", 1, {2, 4});
  h->record(0);  // underflow
  h->record(3);
  h->record(9);  // overflow

  RunReportInputs inputs;
  inputs.command = "generate";
  inputs.metrics = &registry;
  const std::string json = render_run_report(inputs);
  EXPECT_NE(json.find("\"counters\":[{\"name\":\"c\",\"value\":5}]"),
            std::string::npos);
  EXPECT_NE(json.find("\"gauges\":[{\"name\":\"g\",\"value\":-3}]"),
            std::string::npos);
  EXPECT_NE(json.find("\"histograms\":[{\"name\":\"h\",\"lower\":1,"
                      "\"edges\":[2,4],\"counts\":[0,1],\"underflow\":1,"
                      "\"overflow\":1,\"count\":3,\"sum\":12}]"),
            std::string::npos);
}

TEST(RunReport, WriteRoundTripsAndFlagsBadPath) {
  RunReportInputs inputs;
  inputs.command = "generate";
  const std::string path =
      testing::TempDir() + "/nullgraph_test_report.json";
  ASSERT_TRUE(write_run_report(path, inputs).ok());
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string body(1 << 14, '\0');
  body.resize(std::fread(body.data(), 1, body.size(), f));
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(body, render_run_report(inputs));

  const Status bad = write_run_report("/nonexistent-dir/report.json", inputs);
  EXPECT_EQ(bad.code(), StatusCode::kIoError);
}

// ----------------------------------------------------------- prometheus

// The renderer goldens ARE the exposition-format contract the daemon's
// `metrics` verb and --metrics-out snapshots serve to scrapers: TYPE line
// per family, nullgraph_ prefix, sanitized names, cumulative le buckets.

TEST(Prometheus, EmptyRegistryRendersEmpty) {
  MetricsRegistry registry;
  EXPECT_EQ(render_prometheus(registry.snapshot()), "");
}

TEST(Prometheus, NameSanitizationMapsNonAlphanumericsToUnderscore) {
  EXPECT_EQ(prometheus_name("serve.queue_depth"),
            "nullgraph_serve_queue_depth");
  EXPECT_EQ(prometheus_name("swaps.windowed-acceptance permille"),
            "nullgraph_swaps_windowed_acceptance_permille");
  EXPECT_EQ(prometheus_name("already:legal_name9"),
            "nullgraph_already:legal_name9");
}

TEST(Prometheus, CounterAndGaugeGolden) {
  MetricsRegistry registry;
  registry.counter("serve.jobs_completed")->add(4);
  registry.gauge("governor.memory_bytes")->set(-12);
  EXPECT_EQ(render_prometheus(registry.snapshot()),
            "# TYPE nullgraph_serve_jobs_completed counter\n"
            "nullgraph_serve_jobs_completed 4\n"
            "# TYPE nullgraph_governor_memory_bytes gauge\n"
            "nullgraph_governor_memory_bytes -12\n");
}

TEST(Prometheus, HistogramGoldenWithCumulativeBuckets) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram("probe.len", /*lower=*/1, {2, 4});
  h->record(0);  // underflow: folds into every le bucket
  h->record(2);
  h->record(3);
  h->record(9);  // overflow: only reaches +Inf
  EXPECT_EQ(render_prometheus(registry.snapshot()),
            "# TYPE nullgraph_probe_len histogram\n"
            "nullgraph_probe_len_bucket{le=\"2\"} 2\n"
            "nullgraph_probe_len_bucket{le=\"4\"} 3\n"
            "nullgraph_probe_len_bucket{le=\"+Inf\"} 4\n"
            "nullgraph_probe_len_sum 14\n"
            "nullgraph_probe_len_count 4\n");
}

// ------------------------------------------------------------ event log

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return {};
  std::string body(1 << 16, '\0');
  body.resize(std::fread(body.data(), 1, body.size(), f));
  std::fclose(f);
  return body;
}

TEST(EventLog, WritesFixedKeyOrderAndOmitsZeroFields) {
  const std::string path = testing::TempDir() + "/nullgraph_test_events.jsonl";
  EventLog log;
  ASSERT_TRUE(log.open(path).ok());
  log.emit({EventKind::kShardCommit, /*job_id=*/7, /*trace_id=*/9,
            "edge generation", /*value=*/3, "shard 1/4"});
  log.emit({EventKind::kCheckpoint});  // everything optional omitted
  const std::string body = read_file(path);
  std::remove(path.c_str());

  // ts_us is live; everything after it is deterministic and ordered.
  const std::size_t first_break = body.find(",\"event\"");
  ASSERT_NE(first_break, std::string::npos);
  EXPECT_EQ(body.substr(0, 9), "{\"ts_us\":");
  const std::size_t eol = body.find('\n');
  EXPECT_EQ(body.substr(first_break, eol - first_break),
            ",\"event\":\"shard_commit\",\"job\":7,\"trace\":9,"
            "\"phase\":\"edge generation\",\"value\":3,"
            "\"detail\":\"shard 1/4\"}");
  const std::string second = body.substr(eol + 1);
  EXPECT_NE(second.find(",\"event\":\"checkpoint\"}\n"), std::string::npos);
  EXPECT_EQ(log.emitted(), 2u);
}

TEST(EventLog, EscapesDetailAndPhaseStrings) {
  const std::string path = testing::TempDir() + "/nullgraph_test_escape.jsonl";
  EventLog log;
  ASSERT_TRUE(log.open(path).ok());
  log.emit({EventKind::kDegradation, 0, 0, "pha\"se", 0,
            std::string_view("back\\slash\nnewline\ttab", 22)});
  const std::string body = read_file(path);
  std::remove(path.c_str());
  EXPECT_NE(body.find("\"phase\":\"pha\\\"se\""), std::string::npos) << body;
  EXPECT_NE(body.find("back\\\\slash\\nnewline\\ttab"), std::string::npos)
      << body;
}

TEST(EventLog, InactiveWithoutSinksAndActiveWithRingOnly) {
  EventLog log;
  EXPECT_FALSE(log.active());
  log.emit({EventKind::kCheckpoint});  // no sink: dropped, not a crash
  EXPECT_EQ(log.emitted(), 0u);

  FlightRecorder ring;
  log.attach_flight_recorder(&ring);
  EXPECT_TRUE(log.active());  // black-box-only mode (--flight-out alone)
  log.emit({EventKind::kCheckpoint, 0, 0, {}, 5});
  EXPECT_EQ(log.emitted(), 1u);
  EXPECT_EQ(ring.recorded(), 1u);
}

// ------------------------------------------------------- flight recorder

TEST(FlightRecorder, DumpPreservesRecentLinesInOrder) {
  FlightRecorder ring;
  for (int i = 0; i < 10; ++i)
    ring.record("{\"line\":" + std::to_string(i) + "}\n");
  const std::string path = testing::TempDir() + "/nullgraph_test_flight.jsonl";
  ASSERT_TRUE(ring.dump_to(path).ok());
  const std::string body = read_file(path);
  std::remove(path.c_str());
  std::string expected;
  for (int i = 0; i < 10; ++i)
    expected += "{\"line\":" + std::to_string(i) + "}\n";
  EXPECT_EQ(body, expected);
}

TEST(FlightRecorder, RingKeepsOnlyTheLastKSlots) {
  FlightRecorder ring;
  const int total = static_cast<int>(FlightRecorder::kSlots) + 44;
  for (int i = 0; i < total; ++i)
    ring.record("{\"line\":" + std::to_string(i) + "}\n");
  EXPECT_EQ(ring.recorded(), static_cast<std::uint64_t>(total));
  const std::string path = testing::TempDir() + "/nullgraph_test_wrap.jsonl";
  ASSERT_TRUE(ring.dump_to(path).ok());
  const std::string body = read_file(path);
  std::remove(path.c_str());
  // Oldest survivor is exactly `total - kSlots`; line 0 has lapped out.
  EXPECT_EQ(body.substr(0, body.find('\n') + 1),
            "{\"line\":44}\n");
  EXPECT_NE(body.rfind("{\"line\":" + std::to_string(total - 1) + "}\n"),
            std::string::npos);
  EXPECT_EQ(body.find("{\"line\":0}\n"), std::string::npos);
}

TEST(FlightRecorder, OversizedLinesAreTruncatedWithNewlineRestored) {
  FlightRecorder ring;
  ring.record(std::string(FlightRecorder::kLineBytes * 2, 'x') + "\n");
  const std::string path = testing::TempDir() + "/nullgraph_test_trunc.jsonl";
  ASSERT_TRUE(ring.dump_to(path).ok());
  const std::string body = read_file(path);
  std::remove(path.c_str());
  EXPECT_EQ(body.size(), FlightRecorder::kLineBytes);
  EXPECT_EQ(body.back(), '\n');
}

TEST(FlightRecorder, EmptyRingDumpsAnEmptyFile) {
  FlightRecorder ring;
  const std::string path = testing::TempDir() + "/nullgraph_test_empty.jsonl";
  ASSERT_TRUE(ring.dump_to(path).ok());
  EXPECT_EQ(read_file(path), "");
  std::remove(path.c_str());
}

TEST(FlightRecorder, DumpToBadPathIsTypedIoError) {
  FlightRecorder ring;
  ring.record("{\"line\":1}\n");
  const Status s = ring.dump_to("/nonexistent-dir/flight.jsonl");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

// ------------------------------------------------------ metrics exporter

TEST(MetricsExporter, FirstSnapshotIsSynchronousAndStopFlushesTheLast) {
  MetricsRegistry registry;
  registry.counter("test.ticks")->add(1);
  const std::string path = testing::TempDir() + "/nullgraph_test_metrics.prom";
  MetricsExporter exporter;
  // A long period: only the synchronous first snapshot and the final
  // stop_and_flush write, making the assertion timing-independent.
  ASSERT_TRUE(exporter.start(&registry, path, /*every_ms=*/60'000).ok());
  EXPECT_NE(read_file(path).find("nullgraph_test_ticks 1\n"),
            std::string::npos);
  registry.counter("test.ticks")->add(41);
  exporter.stop_and_flush();
  EXPECT_NE(read_file(path).find("nullgraph_test_ticks 42\n"),
            std::string::npos);
  EXPECT_GE(exporter.snapshots_written(), 2u);
  std::remove(path.c_str());
}

TEST(MetricsExporter, UnwritablePathFailsStartTyped) {
  MetricsRegistry registry;
  MetricsExporter exporter;
  const Status s =
      exporter.start(&registry, "/nonexistent-dir/metrics.prom", 1000);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  exporter.stop_and_flush();  // no-op on a never-started exporter
}

TEST(MetricsExporter, NullRegistryIsInvalidArgument) {
  MetricsExporter exporter;
  EXPECT_EQ(exporter.start(nullptr, "x.prom", 1000).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace nullgraph::obs
