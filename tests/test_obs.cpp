// Telemetry subsystem tests (DESIGN.md §7): metric instruments and their
// striped merge, the phase-timing sink aggregates, trace emission, the
// windowed acceptance series, and — most load-bearing — a byte-exact
// golden test over the --report-json schema. The golden string IS the
// schema contract: report_version must be bumped and the golden updated
// together on any breaking change, and new keys may only be appended.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/null_model.hpp"
#include "exec/phase_timing.hpp"
#include "lfr/lfr.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

namespace nullgraph::obs {
namespace {

// ---------------------------------------------------------------- metrics

TEST(Counter, MergesStripesAcrossThreads) {
  Counter c("test");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add(1);
    });
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(Gauge, LastWriterWins) {
  Gauge g("test");
  EXPECT_EQ(g.value(), 0);
  g.set(42);
  g.set(-7);
  EXPECT_EQ(g.value(), -7);
}

TEST(Histogram, BucketBoundariesAreInclusiveUpper) {
  Histogram h("test", /*lower=*/1, {2, 4, 8});
  h.record(1);  // lower itself -> first bucket
  h.record(2);  // == edge 0 -> first bucket (inclusive upper)
  h.record(3);  // (2, 4] -> second bucket
  h.record(4);
  h.record(8);  // == last edge -> last bucket, NOT overflow
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.counts, (std::vector<std::uint64_t>{2, 2, 1}));
  EXPECT_EQ(snap.underflow, 0u);
  EXPECT_EQ(snap.overflow, 0u);
  EXPECT_EQ(snap.count, 5u);
  EXPECT_EQ(snap.sum, 1 + 2 + 3 + 4 + 8);
}

TEST(Histogram, UnderflowAndOverflow) {
  Histogram h("test", /*lower=*/10, {20, 30});
  h.record(9);    // below lower
  h.record(-5);   // far below
  h.record(31);   // above last edge
  h.record(1000);
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.underflow, 2u);
  EXPECT_EQ(snap.overflow, 2u);
  EXPECT_EQ(snap.counts, (std::vector<std::uint64_t>{0, 0}));
  EXPECT_EQ(snap.count, 4u);
  EXPECT_EQ(snap.sum, 9 - 5 + 31 + 1000);
}

TEST(Histogram, EmptySnapshotIsAllZero) {
  Histogram h("test", 0, {1, 2, 3});
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum, 0);
  EXPECT_EQ(snap.underflow, 0u);
  EXPECT_EQ(snap.overflow, 0u);
  EXPECT_EQ(snap.counts, (std::vector<std::uint64_t>{0, 0, 0}));
  EXPECT_EQ(snap.edges, (std::vector<std::int64_t>{1, 2, 3}));
}

TEST(MetricsRegistry, GetOrCreateReturnsStableHandles) {
  MetricsRegistry registry;
  Counter* a = registry.counter("x");
  Counter* b = registry.counter("x");
  EXPECT_EQ(a, b);
  // A histogram's first registration fixes its buckets.
  Histogram* h1 = registry.histogram("h", 0, {1, 2});
  Histogram* h2 = registry.histogram("h", 99, {7});
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h1->snapshot().edges, (std::vector<std::int64_t>{1, 2}));
}

TEST(MetricsRegistry, SnapshotSortsInstrumentsByName) {
  MetricsRegistry registry;
  registry.counter("zeta")->add(1);
  registry.counter("alpha")->add(2);
  registry.gauge("mid")->set(5);
  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "alpha");
  EXPECT_EQ(snap.counters[0].value, 2u);
  EXPECT_EQ(snap.counters[1].name, "zeta");
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].value, 5);
  EXPECT_FALSE(snap.empty());
  EXPECT_TRUE(MetricsSnapshot{}.empty());
}

// ----------------------------------------------------------- phase timing

TEST(PhaseTimingSink, AggregatesByPhaseAndTracksSlowestLoop) {
  exec::PhaseTimingSink sink;
  exec::LoopSample a;
  a.wall_ms = 5.0;
  a.chunks = 4;
  a.threads = 2;
  a.chunk_ms_min = 1.0;
  a.chunk_ms_max = 2.0;
  a.chunk_ms_sum = 6.0;
  a.chunk_samples = 4;
  exec::LoopSample b;
  b.wall_ms = 3.0;
  b.chunks = 2;
  b.chunks_skipped = 1;
  b.threads = 2;
  b.chunk_ms_min = 0.5;
  b.chunk_ms_max = 4.0;
  b.chunk_ms_sum = 4.5;
  b.chunk_samples = 2;
  sink.record("swaps", a);
  sink.record("swaps", b);
  sink.record("other", b);

  const std::vector<exec::PhaseTiming> rows = sink.snapshot();
  ASSERT_EQ(rows.size(), 2u);
  const exec::PhaseTiming& swaps = rows[0];
  EXPECT_EQ(swaps.phase, "swaps");
  EXPECT_DOUBLE_EQ(swaps.wall_ms, 8.0);
  EXPECT_DOUBLE_EQ(swaps.max_loop_wall_ms, 5.0);
  EXPECT_EQ(swaps.loops, 2u);
  EXPECT_EQ(swaps.chunks, 6u);
  EXPECT_EQ(swaps.chunks_skipped, 1u);
  EXPECT_DOUBLE_EQ(swaps.chunk_ms_min, 0.5);
  EXPECT_DOUBLE_EQ(swaps.chunk_ms_max, 4.0);
  EXPECT_EQ(swaps.chunk_samples, 6u);
  EXPECT_DOUBLE_EQ(swaps.chunk_ms_mean(), 10.5 / 6.0);
  EXPECT_DOUBLE_EQ(swaps.load_imbalance(), 4.0 / (10.5 / 6.0));
}

TEST(PhaseTimingSink, LoopWithoutChunkTimingLeavesAggregatesUntouched) {
  exec::PhaseTimingSink sink;
  exec::LoopSample timed;
  timed.wall_ms = 1.0;
  timed.chunk_ms_min = 2.0;
  timed.chunk_ms_max = 3.0;
  timed.chunk_ms_sum = 5.0;
  timed.chunk_samples = 2;
  exec::LoopSample untimed;  // chunk_samples == 0: no per-chunk data
  untimed.wall_ms = 9.0;
  sink.record("p", timed);
  sink.record("p", untimed);
  const exec::PhaseTiming row = sink.snapshot().front();
  EXPECT_DOUBLE_EQ(row.chunk_ms_min, 2.0);
  EXPECT_DOUBLE_EQ(row.chunk_ms_max, 3.0);
  EXPECT_EQ(row.chunk_samples, 2u);
  EXPECT_DOUBLE_EQ(row.max_loop_wall_ms, 9.0);
}

TEST(PhaseTiming, LoadImbalanceIsZeroWithoutSamples) {
  exec::PhaseTiming row;
  EXPECT_DOUBLE_EQ(row.load_imbalance(), 0.0);
  EXPECT_DOUBLE_EQ(row.chunk_ms_mean(), 0.0);
}

// ------------------------------------------------------------------ trace

TEST(TraceSpan, NullSinkIsANoOp) {
  // The zero-cost contract: spans without a sink must be safe and do
  // nothing (this is the compiled-in-but-disabled path).
  { TraceSpan span(nullptr, "unobserved"); }
  SUCCEED();
}

TEST(TraceSink, EmitsValidChromeTraceJson) {
  TraceSink sink;
  {
    TraceSpan span(&sink, "outer");
    TraceSpan inner(&sink, "inner");
  }
  sink.instant("marker");
  EXPECT_EQ(sink.event_count(), 3u);
  const std::string json = sink.to_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);  // metadata
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"marker\""), std::string::npos);
}

// --------------------------------------------------- windowed acceptance

TEST(WindowedAcceptance, TrailingWindowSums) {
  const std::vector<std::size_t> attempted = {10, 10, 10, 10};
  const std::vector<std::size_t> swapped = {10, 0, 10, 0};
  const std::vector<double> w = windowed_acceptance(attempted, swapped, 2);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_DOUBLE_EQ(w[0], 1.0);        // 10/10
  EXPECT_DOUBLE_EQ(w[1], 0.5);        // 10/20
  EXPECT_DOUBLE_EQ(w[2], 0.5);        // (0+10)/20
  EXPECT_DOUBLE_EQ(w[3], 0.5);        // (10+0)/20
}

TEST(WindowedAcceptance, ZeroAttemptsAndZeroWindow) {
  const std::vector<double> w =
      windowed_acceptance({0, 4}, {0, 2}, /*window=*/0);  // clamped to 1
  ASSERT_EQ(w.size(), 2u);
  EXPECT_DOUBLE_EQ(w[0], 0.0);  // no attempts -> 0, not NaN
  EXPECT_DOUBLE_EQ(w[1], 0.5);
}

// ----------------------------------------------------------- run reports

// Byte-exact golden over a config-only report. Keys, their order, and the
// compact formatting are all schema: if this fails, either bump
// kReportVersion (breaking change) or append the new key and extend the
// golden (compatible change).
TEST(RunReport, GoldenConfigOnlySchema) {
  RunReportInputs inputs;
  inputs.command = "generate";
  inputs.argv = {"nullgraph", "generate", "--powerlaw"};
  inputs.seed = 7;
  inputs.threads = 4;
  inputs.swap_iterations_requested = 3;
  const std::string expected =
      "{\"report_version\":1,\"tool\":\"nullgraph\",\"command\":\"generate\","
      "\"config\":{\"seed\":7,\"threads\":4,\"swap_iterations\":3,"
      "\"argv\":[\"nullgraph\",\"generate\",\"--powerlaw\"]},"
      "\"phase_seconds\":{},\"exec_phases\":[],\"checks\":[],"
      "\"curtailments\":[],"
      "\"recovery\":{\"retries_used\":0,\"repair\":{\"loops_erased\":0,"
      "\"duplicates_erased\":0,\"surplus_edges_removed\":0,\"edges_added\":0,"
      "\"rewired_patches\":0,\"residual_deficit\":0},"
      "\"probability_entries_sanitized\":0},"
      "\"faults_injected\":{\"edges_dropped\":0,\"edges_duplicated\":0,"
      "\"self_loops_added\":0,\"prob_entries_corrupted\":0},"
      "\"metrics\":{\"counters\":[],\"gauges\":[],\"histograms\":[]},"
      "\"degradations\":[],"
      "\"spill\":{\"spilled\":false,\"dir\":\"\",\"shard_count\":0,"
      "\"edges_on_disk\":0,\"shards_written\":0,\"shards_reused\":0,"
      "\"max_shard_edges\":0}}";
  EXPECT_EQ(render_run_report(inputs), expected);
}

TEST(RunReport, EscapesArgvStrings) {
  RunReportInputs inputs;
  inputs.command = "generate";
  inputs.argv = {"quote\"back\\slash", "tab\there"};
  const std::string json = render_run_report(inputs);
  EXPECT_NE(json.find("\"quote\\\"back\\\\slash\""), std::string::npos);
  EXPECT_NE(json.find("\"tab\\there\""), std::string::npos);
}

TEST(RunReport, SerializesSyntheticSwapChain) {
  GenerateResult result;
  SwapIterationStats it1;
  it1.attempted = 100;
  it1.swapped = 80;
  it1.rejected_existing = 15;
  it1.rejected_loop = 5;
  SwapIterationStats it2;
  it2.attempted = 100;
  it2.swapped = 60;
  it2.rejected_existing = 30;
  it2.rejected_loop = 10;
  it2.input_multi_edges = 2;
  result.swap_stats.iterations = {it1, it2};
  result.swap_stats.edges_ever_swapped = 77;
  result.report.faults_injected.loops_added = 3;
  result.report.retries_used = 1;

  RunReportInputs inputs;
  inputs.command = "shuffle";
  inputs.swap_iterations_requested = 2;
  inputs.result = &result;
  const std::string json = render_run_report(inputs);

  EXPECT_NE(json.find("\"swap_chain\":{\"iterations_requested\":2,"
                      "\"iterations_run\":2,\"total_swapped\":140,"
                      "\"overall_acceptance\":0.7,\"stop_reason\":\"kOk\","
                      "\"edges_ever_swapped\":77"),
            std::string::npos);
  EXPECT_NE(json.find("\"acceptance\":[0.8,0.6]"), std::string::npos);
  EXPECT_NE(json.find("\"windowed_acceptance\":[0.8,0.7]"),
            std::string::npos);
  EXPECT_NE(json.find("\"rejected_existing\":[15,30]"), std::string::npos);
  EXPECT_NE(json.find("\"input_multi_edges\":[0,2]"), std::string::npos);
  EXPECT_NE(json.find("\"self_loops_added\":3"), std::string::npos);
  EXPECT_NE(json.find("\"retries_used\":1"), std::string::npos);
}

TEST(RunReport, SerializesLfrBlock) {
  LfrGraph graph;
  graph.edges = {{0, 1}, {1, 2}};
  graph.num_communities = 4;
  graph.communities_completed = 4;
  graph.achieved_mu = 0.25;
  graph.merged_duplicates = 1;

  RunReportInputs inputs;
  inputs.command = "lfr";
  inputs.lfr = &graph;
  const std::string json = render_run_report(inputs);
  EXPECT_NE(json.find("\"lfr\":{\"edges\":2,\"num_communities\":4,"
                      "\"communities_completed\":4,\"achieved_mu\":0.25,"
                      "\"merged_duplicates\":1,\"curtailed\":\"kOk\"}"),
            std::string::npos);
}

TEST(RunReport, MetricsSectionRendersAllInstrumentKinds) {
  MetricsRegistry registry;
  registry.counter("c")->add(5);
  registry.gauge("g")->set(-3);
  Histogram* h = registry.histogram("h", 1, {2, 4});
  h->record(0);  // underflow
  h->record(3);
  h->record(9);  // overflow

  RunReportInputs inputs;
  inputs.command = "generate";
  inputs.metrics = &registry;
  const std::string json = render_run_report(inputs);
  EXPECT_NE(json.find("\"counters\":[{\"name\":\"c\",\"value\":5}]"),
            std::string::npos);
  EXPECT_NE(json.find("\"gauges\":[{\"name\":\"g\",\"value\":-3}]"),
            std::string::npos);
  EXPECT_NE(json.find("\"histograms\":[{\"name\":\"h\",\"lower\":1,"
                      "\"edges\":[2,4],\"counts\":[0,1],\"underflow\":1,"
                      "\"overflow\":1,\"count\":3,\"sum\":12}]"),
            std::string::npos);
}

TEST(RunReport, WriteRoundTripsAndFlagsBadPath) {
  RunReportInputs inputs;
  inputs.command = "generate";
  const std::string path =
      testing::TempDir() + "/nullgraph_test_report.json";
  ASSERT_TRUE(write_run_report(path, inputs).ok());
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string body(1 << 14, '\0');
  body.resize(std::fread(body.data(), 1, body.size(), f));
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(body, render_run_report(inputs));

  const Status bad = write_run_report("/nonexistent-dir/report.json", inputs);
  EXPECT_EQ(bad.code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace nullgraph::obs
