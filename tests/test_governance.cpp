// Run-governance tests: budget/deadline/cancellation semantics of
// RunGovernor, the StallWatchdog's sliding window, and end-to-end
// curtailment behavior through generate_null_graph / shuffle_graph — a
// governed run that trips must still return a valid best-so-far graph and
// record WHICH phase was cut short.

#include <gtest/gtest.h>
#include <omp.h>

#include <chrono>
#include <thread>

#include "core/double_edge_swap.hpp"
#include "core/null_model.hpp"
#include "ds/degree_distribution.hpp"
#include "ds/edge_list.hpp"
#include "robustness/governance.hpp"
#include "robustness/invariants.hpp"
#include "robustness/status.hpp"

namespace nullgraph {
namespace {

// ---------------------------------------------------------------- watchdog

TEST(StallWatchdog, NeedsFullWindowBeforeAnyVerdict) {
  StallWatchdog dog({.enabled = true, .window = 4, .min_acceptance = 0.0});
  for (int i = 0; i < 3; ++i) {
    dog.record(100, 0);
    EXPECT_FALSE(dog.stalled()) << "verdict before the window filled";
  }
  dog.record(100, 0);  // fourth sample: window full, all-zero
  EXPECT_TRUE(dog.stalled());
}

TEST(StallWatchdog, SingleCommitAnywhereInWindowClearsStall) {
  StallWatchdog dog({.enabled = true, .window = 4, .min_acceptance = 0.0});
  for (int i = 0; i < 4; ++i) dog.record(100, 0);
  ASSERT_TRUE(dog.stalled());
  dog.record(100, 1);  // productive iteration enters the ring
  EXPECT_FALSE(dog.stalled());
  // ...and the stall returns only once it is evicted again.
  for (int i = 0; i < 3; ++i) dog.record(100, 0);
  EXPECT_FALSE(dog.stalled());  // the commit is still in the window
  dog.record(100, 0);
  EXPECT_TRUE(dog.stalled());
}

TEST(StallWatchdog, ZeroAttemptedWindowIsNotAStall) {
  // m < 2 degenerate chains attempt nothing; that is idle, not stalled.
  StallWatchdog dog({.enabled = true, .window = 2, .min_acceptance = 0.0});
  dog.record(0, 0);
  dog.record(0, 0);
  EXPECT_FALSE(dog.stalled());
}

TEST(StallWatchdog, DisabledConfigNeverStalls) {
  StallWatchdog dog({.enabled = false, .window = 2, .min_acceptance = 1.0});
  for (int i = 0; i < 16; ++i) dog.record(100, 0);
  EXPECT_FALSE(dog.stalled());
}

TEST(StallWatchdog, WindowAcceptanceIsCommittedOverAttempted) {
  StallWatchdog dog({.enabled = true, .window = 2, .min_acceptance = 0.25});
  dog.record(100, 10);
  dog.record(100, 10);
  EXPECT_DOUBLE_EQ(dog.window_acceptance(), 0.1);
  EXPECT_TRUE(dog.stalled());  // 0.1 <= 0.25 floor
  dog.record(100, 90);
  EXPECT_DOUBLE_EQ(dog.window_acceptance(), 0.5);  // (10+90)/200
  EXPECT_FALSE(dog.stalled());
}

// ---------------------------------------------------------------- governor

TEST(RunGovernor, UnlimitedDefaultNeverStops) {
  const RunGovernor governor;
  EXPECT_EQ(governor.should_stop(), StatusCode::kOk);
  EXPECT_FALSE(governor.stopped());
  EXPECT_TRUE(governor.budget().unlimited());
}

TEST(RunGovernor, CancelTokenTripsFromAnyCopy) {
  CancelToken token;
  const CancelToken copy = token;  // all copies share the flag
  const RunGovernor governor(RunBudget{}, copy);
  EXPECT_EQ(governor.should_stop(), StatusCode::kOk);
  token.request_cancel();
  EXPECT_EQ(governor.should_stop(), StatusCode::kCancelled);
  EXPECT_TRUE(governor.stopped());
}

TEST(RunGovernor, DeadlineExpiryTripsAndSticks) {
  const RunGovernor governor(RunBudget{.deadline_ms = 1}, CancelToken{});
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(governor.should_stop(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(governor.elapsed_ms(), 1.0);
}

TEST(RunGovernor, FirstStopReasonWinsForever) {
  const RunGovernor governor;
  governor.note_stop(StatusCode::kSwapStalled);
  governor.note_stop(StatusCode::kCancelled);  // too late
  EXPECT_EQ(governor.stop_reason(), StatusCode::kSwapStalled);
  EXPECT_EQ(governor.should_stop(), StatusCode::kSwapStalled);
}

TEST(RunGovernor, CancellationOutranksDeadlineWhenBothPending) {
  CancelToken token;
  token.request_cancel();
  const RunGovernor governor(RunBudget{.deadline_ms = 1}, token);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(governor.should_stop(), StatusCode::kCancelled);
}

TEST(RunGovernor, MemoryCeilingTripsOnlyAboveBudget) {
  const RunGovernor governor(RunBudget{.max_memory_bytes = 1000},
                             CancelToken{});
  EXPECT_FALSE(governor.memory_exceeded(1000));  // at the ceiling is fine
  EXPECT_FALSE(governor.stopped());
  EXPECT_TRUE(governor.memory_exceeded(1001));
  EXPECT_EQ(governor.stop_reason(), StatusCode::kMemoryBudget);
}

TEST(RunGovernor, ZeroMemoryBudgetMeansUnlimited) {
  const RunGovernor governor;
  EXPECT_FALSE(governor.memory_exceeded(~std::size_t{0}));
  EXPECT_FALSE(governor.stopped());
}

// ----------------------------------------------------- pipeline curtailment

DegreeDistribution test_dist() {
  return DegreeDistribution({{2, 200}, {3, 100}, {4, 50}});
}

TEST(Governance, DisabledByDefaultChangesNothing) {
  // Swap output is deterministic per (seed, thread count): pin one thread
  // so the ungoverned/governed comparison is exact rather than
  // race-schedule-dependent.
  const int saved_threads = omp_get_max_threads();
  omp_set_num_threads(1);
  GenerateConfig plain;
  plain.seed = 5;
  GenerateConfig governed = plain;
  governed.governance.enabled = true;  // armed but unlimited
  const GenerateResult a = generate_null_graph(test_dist(), plain);
  const GenerateResult b = generate_null_graph(test_dist(), governed);
  omp_set_num_threads(saved_threads);
  EXPECT_EQ(a.edges, b.edges);
  EXPECT_TRUE(b.report.curtailments.empty());
  EXPECT_EQ(b.report.curtailed_by(), StatusCode::kOk);
}

TEST(Governance, SwapIterationCapCurtailsAndReports) {
  GenerateConfig config;
  config.seed = 5;
  config.swap_iterations = 10;
  config.governance.enabled = true;
  config.governance.budget.max_swap_iterations = 3;
  const GenerateResult result = generate_null_graph(test_dist(), config);
  EXPECT_EQ(result.swap_stats.iterations.size(), 3u);
  EXPECT_EQ(result.swap_stats.stop_reason, StatusCode::kDeadlineExceeded);
  ASSERT_FALSE(result.report.curtailments.empty());
  const Curtailment& cut = result.report.curtailments.front();
  EXPECT_EQ(cut.phase, "swaps");
  EXPECT_EQ(cut.reason, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(cut.completed, 3u);
  EXPECT_EQ(cut.requested, 10u);
  // Curtailment is informational: the default policy's checks still pass
  // and the best-so-far graph is a valid simple graph.
  EXPECT_TRUE(result.report.ok());
  EXPECT_TRUE(is_simple(result.edges));
}

TEST(Governance, PreCancelledRunSkipsAllPhasesGracefully) {
  GenerateConfig config;
  config.governance.enabled = true;
  config.governance.cancel.request_cancel();
  const GenerateResult result = generate_null_graph(test_dist(), config);
  EXPECT_EQ(result.report.curtailed_by(), StatusCode::kCancelled);
  EXPECT_EQ(result.swap_stats.iterations.size(), 0u);
  // Degraded output is still structurally sound (possibly empty).
  EXPECT_TRUE(is_simple(result.edges));
}

TEST(Governance, DeadlineWithSlowPhaseFaultCurtailsWithinSlack) {
  // The slow_phase_ms drill makes each swap iteration take >= 20 ms, so a
  // 50 ms deadline must cut the chain well before its 64 iterations.
  GenerateConfig config;
  config.seed = 5;
  config.swap_iterations = 64;
  config.guardrails.faults.slow_phase_ms = 20;
  config.governance.enabled = true;
  config.governance.budget.deadline_ms = 50;
  const auto t0 = std::chrono::steady_clock::now();
  const GenerateResult result = generate_null_graph(test_dist(), config);
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_EQ(result.report.curtailed_by(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(result.swap_stats.iterations.size(), 64u);
  // Deadline + one iteration's slack (20 ms sleep + chunk work), padded for
  // slow CI machines.
  EXPECT_LT(elapsed_ms, 50.0 + 2000.0);
  EXPECT_TRUE(is_simple(result.edges));
}

TEST(Governance, MemoryBudgetSkipsSwapPhaseKeepsEdgeSkipOutput) {
  GenerateConfig config;
  config.seed = 5;
  config.swap_iterations = 10;
  config.governance.enabled = true;
  config.governance.budget.max_memory_bytes = 1;  // nothing fits
  const GenerateResult result = generate_null_graph(test_dist(), config);
  EXPECT_EQ(result.report.curtailed_by(), StatusCode::kMemoryBudget);
  EXPECT_EQ(result.swap_stats.iterations.size(), 0u);
  EXPECT_EQ(result.swap_stats.stop_reason, StatusCode::kMemoryBudget);
  // The edge-skip phase ran to completion; its output is the best-so-far.
  EXPECT_FALSE(result.edges.empty());
  EXPECT_TRUE(is_simple(result.edges));
}

TEST(Governance, WatchdogCutsZeroAcceptanceChain) {
  // K6: every double-edge swap proposal recreates an existing edge or a
  // loop, so acceptance is exactly zero forever — the deterministic
  // signature the watchdog exists to catch.
  EdgeList k6;
  for (VertexId u = 0; u < 6; ++u)
    for (VertexId v = u + 1; v < 6; ++v) k6.push_back({u, v});
  GenerateConfig config;
  config.swap_iterations = 50;
  config.governance.enabled = true;
  config.governance.watchdog = {.enabled = true, .window = 4,
                                .min_acceptance = 0.0};
  const GenerateResult result = shuffle_graph(k6, config);
  EXPECT_EQ(result.report.curtailed_by(), StatusCode::kSwapStalled);
  // The verdict lands after the window fills, the chain stops on the next
  // iteration's check.
  EXPECT_LT(result.swap_stats.iterations.size(), 50u);
  EXPECT_GE(result.swap_stats.iterations.size(), 4u);
  EXPECT_EQ(result.swap_stats.total_swapped(), 0u);
  // A complete graph shuffles to itself; curtailment kept it intact.
  EXPECT_EQ(result.edges.size(), k6.size());
  EXPECT_TRUE(is_simple(result.edges));
}

TEST(Governance, WatchdogLeavesHealthyChainsAlone) {
  GenerateConfig config;
  config.seed = 9;
  config.swap_iterations = 20;
  config.governance.enabled = true;
  config.governance.watchdog = {.enabled = true, .window = 4,
                                .min_acceptance = 0.0};
  const GenerateResult result = generate_null_graph(test_dist(), config);
  EXPECT_EQ(result.report.curtailed_by(), StatusCode::kOk);
  EXPECT_EQ(result.swap_stats.iterations.size(), 20u);
  EXPECT_GT(result.swap_stats.total_swapped(), 0u);
}

TEST(Governance, CurtailmentAppearsInReportSummary) {
  GenerateConfig config;
  config.swap_iterations = 10;
  config.governance.enabled = true;
  config.governance.budget.max_swap_iterations = 2;
  const GenerateResult result = generate_null_graph(test_dist(), config);
  const std::string summary = result.report.summary();
  EXPECT_NE(summary.find("curtailed"), std::string::npos) << summary;
  EXPECT_NE(summary.find("kDeadlineExceeded"), std::string::npos) << summary;
}

TEST(Governance, StrictPolicyDoesNotThrowOnCurtailment) {
  // Curtailment is a budget decision, not an invariant violation: kStrict
  // aborts on broken outputs, never on runs the caller chose to bound.
  GenerateConfig config;
  config.swap_iterations = 10;
  config.guardrails.policy = RecoveryPolicy::kStrict;
  config.governance.enabled = true;
  config.governance.budget.max_swap_iterations = 2;
  EXPECT_NO_THROW({
    const GenerateResult result = generate_null_graph(test_dist(), config);
    EXPECT_EQ(result.report.curtailed_by(), StatusCode::kDeadlineExceeded);
  });
}

TEST(Governance, SwapStatsAcceptanceAggregatesAllIterations) {
  SwapStats stats;
  stats.iterations.resize(2);
  stats.iterations[0].attempted = 100;
  stats.iterations[0].swapped = 30;
  stats.iterations[1].attempted = 100;
  stats.iterations[1].swapped = 10;
  EXPECT_DOUBLE_EQ(stats.acceptance(), 0.2);
  EXPECT_DOUBLE_EQ(SwapStats{}.acceptance(), 0.0);
}

TEST(Governance, NewStatusCodesHaveNamesAndExitCodes) {
  EXPECT_STREQ(status_code_name(StatusCode::kDeadlineExceeded),
               "kDeadlineExceeded");
  EXPECT_STREQ(status_code_name(StatusCode::kCancelled), "kCancelled");
  EXPECT_STREQ(status_code_name(StatusCode::kSwapStalled), "kSwapStalled");
  EXPECT_STREQ(status_code_name(StatusCode::kCapacityExhausted),
               "kCapacityExhausted");
  EXPECT_STREQ(status_code_name(StatusCode::kMemoryBudget), "kMemoryBudget");
  EXPECT_STREQ(status_code_name(StatusCode::kCheckpointInvalid),
               "kCheckpointInvalid");
  EXPECT_EQ(status_exit_code(StatusCode::kDeadlineExceeded), 12);
  EXPECT_EQ(status_exit_code(StatusCode::kCancelled), 13);
  EXPECT_EQ(status_exit_code(StatusCode::kSwapStalled), 14);
  EXPECT_EQ(status_exit_code(StatusCode::kCapacityExhausted), 15);
  EXPECT_EQ(status_exit_code(StatusCode::kMemoryBudget), 16);
  EXPECT_EQ(status_exit_code(StatusCode::kCheckpointInvalid), 17);
}

}  // namespace
}  // namespace nullgraph
