#include "permute/permutation.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <vector>

namespace nullgraph {
namespace {

TEST(KnuthTargets, BoundsRespected) {
  const auto targets = knuth_targets(1000, 7);
  ASSERT_EQ(targets.size(), 1000u);
  for (std::size_t i = 0; i < targets.size(); ++i)
    EXPECT_LE(targets[i], i) << "H[" << i << "]";
}

TEST(KnuthTargets, DeterministicPerSeed) {
  EXPECT_EQ(knuth_targets(100, 5), knuth_targets(100, 5));
  EXPECT_NE(knuth_targets(100, 5), knuth_targets(100, 6));
}

TEST(SerialPermute, ProducesPermutation) {
  std::vector<int> values(500);
  std::iota(values.begin(), values.end(), 0);
  serial_permute(std::span<int>(values), 42);
  auto sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 500; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(SerialPermute, ActuallyShuffles) {
  std::vector<int> values(500);
  std::iota(values.begin(), values.end(), 0);
  serial_permute(std::span<int>(values), 42);
  int fixed_points = 0;
  for (int i = 0; i < 500; ++i)
    if (values[i] == i) ++fixed_points;
  EXPECT_LT(fixed_points, 20);  // E[fixed points] = 1
}

TEST(ParallelPermute, TinyInputs) {
  std::vector<int> empty;
  EXPECT_EQ(parallel_permute(std::span<int>(empty), 1).rounds, 0u);
  std::vector<int> one{7};
  parallel_permute(std::span<int>(one), 1);
  EXPECT_EQ(one[0], 7);
  std::vector<int> two{1, 2};
  parallel_permute(std::span<int>(two), 1);
  std::sort(two.begin(), two.end());
  EXPECT_EQ(two, (std::vector<int>{1, 2}));
}

class PermuteEquivalence
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(PermuteEquivalence, ParallelMatchesSerialExactly) {
  const auto [n, seed] = GetParam();
  std::vector<std::uint64_t> serial_values(n), parallel_values(n);
  std::iota(serial_values.begin(), serial_values.end(), 0u);
  std::iota(parallel_values.begin(), parallel_values.end(), 0u);
  serial_permute(std::span<std::uint64_t>(serial_values), seed);
  const PermuteStats stats =
      parallel_permute(std::span<std::uint64_t>(parallel_values), seed);
  EXPECT_EQ(serial_values, parallel_values);
  if (n >= 2) EXPECT_GE(stats.rounds, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, PermuteEquivalence,
    ::testing::Combine(::testing::Values(2, 3, 4, 10, 63, 64, 1000, 40000),
                       ::testing::Values(1u, 17u, 0xfeedfaceu)));

TEST(ParallelPermute, RoundsAreLogarithmic) {
  std::vector<std::uint64_t> values(100000);
  std::iota(values.begin(), values.end(), 0u);
  const PermuteStats stats =
      parallel_permute(std::span<std::uint64_t>(values), 3);
  // Shun et al.: O(log n) rounds w.h.p.; allow generous slack.
  EXPECT_LE(stats.rounds, 200u);
}

TEST(ParallelPermute, UniformOverSmallPermutations) {
  // n = 4: all 24 permutations should appear with equal frequency across
  // seeds. Chi-square with 23 dof at alpha ~ 1e-4 is about 58.6.
  const int trials = 24000;
  std::map<std::vector<int>, int> counts;
  for (int seed = 0; seed < trials; ++seed) {
    std::vector<int> values{0, 1, 2, 3};
    parallel_permute(std::span<int>(values),
                     static_cast<std::uint64_t>(seed) * 2654435761u + 1);
    ++counts[values];
  }
  EXPECT_EQ(counts.size(), 24u);
  const double expected = trials / 24.0;
  double chi_square = 0.0;
  for (const auto& [perm, count] : counts) {
    const double diff = count - expected;
    chi_square += diff * diff / expected;
  }
  EXPECT_LT(chi_square, 58.6);
}

TEST(ApplyTargets, ExplicitTargetsGiveKnownResult) {
  // Knuth shuffle by hand: i=3 swap(a[3],a[1]); i=2 swap(a[2],a[0]);
  // i=1 swap(a[1],a[1]).
  std::vector<int> values{10, 20, 30, 40};
  const std::vector<std::uint64_t> targets{0, 1, 0, 1};
  apply_targets_serial(std::span<int>(values),
                       std::span<const std::uint64_t>(targets));
  EXPECT_EQ(values, (std::vector<int>{30, 40, 10, 20}));

  std::vector<int> values2{10, 20, 30, 40};
  apply_targets_parallel(std::span<int>(values2),
                         std::span<const std::uint64_t>(targets));
  EXPECT_EQ(values2, (std::vector<int>{30, 40, 10, 20}));
}

TEST(ParallelPermute, WorksOnNonTrivialElementType) {
  struct Pair {
    int a, b;
    bool operator==(const Pair&) const = default;
  };
  std::vector<Pair> values;
  for (int i = 0; i < 100; ++i) values.push_back({i, -i});
  auto copy = values;
  parallel_permute(std::span<Pair>(values), 5);
  serial_permute(std::span<Pair>(copy), 5);
  EXPECT_EQ(values, copy);
}

}  // namespace
}  // namespace nullgraph
