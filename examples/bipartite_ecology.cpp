// bipartite_ecology: the ecology community's classic use of degree-
// preserving null models. A species-site presence matrix is a bipartite
// graph; the "checkerboard" question asks whether species co-occur less
// often than their prevalences predict (competition) — answered against a
// fixed-degree bipartite null model (here: our checkerboard swaps).
//
//   ./bipartite_ecology [species] [sites] [ensemble]

#include <cstdio>
#include <cstdlib>
#include <unordered_set>

#include "analysis/motifs.hpp"
#include "bipartite/bipartite.hpp"
#include "util/rng.hpp"

namespace {

using namespace nullgraph;

/// C-score: mean number of "checkerboard units" over species pairs —
/// (d_a - shared)(d_b - shared), the classic Stone & Roberts statistic.
double c_score(const ArcList& edges, std::size_t num_species,
               std::size_t num_sites) {
  // Species-major bitsets of site membership.
  std::vector<std::vector<std::uint64_t>> rows(
      num_species, std::vector<std::uint64_t>((num_sites + 63) / 64, 0));
  std::vector<std::uint64_t> degree(num_species, 0);
  for (const Arc& e : edges) {
    rows[e.from][e.to / 64] |= 1ULL << (e.to % 64);
    ++degree[e.from];
  }
  double total = 0.0;
  std::size_t pairs = 0;
  for (std::size_t a = 0; a < num_species; ++a) {
    for (std::size_t b = a + 1; b < num_species; ++b) {
      std::uint64_t shared = 0;
      for (std::size_t w = 0; w < rows[a].size(); ++w)
        shared += static_cast<std::uint64_t>(
            __builtin_popcountll(rows[a][w] & rows[b][w]));
      total += static_cast<double>((degree[a] - shared) *
                                   (degree[b] - shared));
      ++pairs;
    }
  }
  return pairs ? total / static_cast<double>(pairs) : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nullgraph;
  const std::size_t species =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 60;
  const std::size_t sites =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 120;
  const int ensemble = argc > 3 ? std::atoi(argv[3]) : 100;

  // Synthetic observation with PLANTED segregation: two species guilds
  // preferring disjoint halves of the sites.
  Xoshiro256ss rng(7);
  ArcList observed;
  for (VertexId s = 0; s < species; ++s) {
    const bool guild_a = s < species / 2;
    for (VertexId t = 0; t < sites; ++t) {
      const bool home_half = guild_a == (t < sites / 2);
      const double p = home_half ? 0.35 : 0.05;
      if (rng.uniform() < p) observed.push_back({s, t});
    }
  }
  const double observed_score = c_score(observed, species, sites);
  std::printf("observed species-site matrix: %zu x %zu, %zu presences, "
              "C-score %.3f\n",
              species, sites, observed.size(), observed_score);

  // Null ensemble: checkerboard swaps preserve every species' prevalence
  // and every site's richness exactly.
  EnsembleStats stats;
  for (int s = 0; s < ensemble; ++s) {
    ArcList shuffled = observed;
    bipartite_swap(shuffled, species, 10,
                   1000 + static_cast<std::uint64_t>(s));
    stats.add(c_score(shuffled, species, sites));
  }
  std::printf("null ensemble (%d samples): C-score %.3f +- %.3f\n", ensemble,
              stats.mean(), stats.stddev());
  const double z = z_score(observed_score, stats.mean(), stats.stddev());
  std::printf("z-score %+.2f -> %s\n", z,
              z > 3 ? "SEGREGATED: co-occurrence is lower than degrees "
                      "predict (planted guild structure detected)"
                    : "no significant segregation");
  return 0;
}
