// shuffle_edges: problem 1 of the paper — turn an EXISTING edge list into a
// uniformly random simple graph with the same degree sequence, and watch
// the mixing diagnostics per iteration.
//
//   ./shuffle_edges [edge_list.txt] [iterations]
//
// Without a file argument a skewed demo graph is generated in memory.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/double_edge_swap.hpp"
#include "gen/datasets.hpp"
#include "gen/havel_hakimi.hpp"
#include "io/graph_io.hpp"

int main(int argc, char** argv) {
  using namespace nullgraph;
  EdgeList edges;
  if (argc > 1 && std::string(argv[1]) != "-") {
    edges = read_edge_list_file(argv[1]);
    std::printf("loaded %zu edges from %s\n", edges.size(), argv[1]);
  } else {
    // Demo: a deterministic (Havel-Hakimi) realization of the as20-like
    // distribution — maximally non-random, ideal for watching mixing.
    edges = havel_hakimi(as20_like());
    std::printf("demo graph: Havel-Hakimi realization of as20-like, %zu "
                "edges\n",
                edges.size());
  }
  const std::size_t iterations =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 10;

  const auto degrees_before = degrees_of(edges);
  std::printf("%-5s %10s %10s %10s %10s\n", "iter", "attempted", "swapped",
              "rej_exist", "rej_loop");
  for (std::size_t it = 0; it < iterations; ++it) {
    SwapConfig config;
    config.iterations = 1;
    config.seed = 1000 + it;
    const SwapStats stats = swap_edges(edges, config);
    const SwapIterationStats& s = stats.iterations[0];
    std::printf("%-5zu %10zu %10zu %10zu %10zu\n", it + 1, s.attempted,
                s.swapped, s.rejected_existing, s.rejected_loop);
  }

  const bool degrees_ok = degrees_of(edges) == degrees_before;
  std::printf("degree sequence preserved: %s, simple: %s\n",
              degrees_ok ? "yes" : "NO", is_simple(edges) ? "yes" : "NO");
  if (argc > 3) {
    write_edge_list_file(argv[3], edges);
    std::printf("wrote shuffled graph to %s\n", argv[3]);
  }
  return degrees_ok ? 0 : 1;
}
