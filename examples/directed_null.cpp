// directed_null: the directed extension (paper Section I, refs [14],[15]).
// Builds a skewed joint (in, out) degree distribution, generates a simple
// digraph null model, and verifies both marginals plus reciprocity against
// a Kleitman-Wang exact realization.
//
//   ./directed_null [n_scale]

#include <cstdio>
#include <cstdlib>
#include <unordered_set>

#include "directed/directed_generators.hpp"
#include "directed/directed_swap.hpp"

namespace {

using namespace nullgraph;

/// Fraction of arcs whose reverse also exists (a directed-only statistic
/// null models calibrate for motif analysis, cf. Durak et al.).
double reciprocity(const ArcList& arcs) {
  if (arcs.empty()) return 0.0;
  std::unordered_set<EdgeKey> present;
  present.reserve(arcs.size() * 2);
  for (const Arc& a : arcs) present.insert(a.key());
  std::size_t mutual = 0;
  for (const Arc& a : arcs)
    if (present.contains(Arc{a.to, a.from}.key())) ++mutual;
  return static_cast<double>(mutual) / static_cast<double>(arcs.size());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nullgraph;
  const std::uint64_t scale =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;

  const DirectedDegreeDistribution dist({
      {1, 1, 5000 * scale},
      {2, 1, 2000 * scale},
      {1, 2, 2000 * scale},
      {12, 5, 150 * scale},
      {5, 12, 150 * scale},
      {200, 200, 3 * scale},
  });
  std::printf("target: n=%llu arcs=%llu classes=%zu\n",
              static_cast<unsigned long long>(dist.num_vertices()),
              static_cast<unsigned long long>(dist.num_arcs()),
              dist.num_classes());

  const ArcList arcs = generate_directed_null_graph(dist, 1, 5);
  std::printf("generated: %zu arcs, simple=%s\n", arcs.size(),
              is_simple(arcs) ? "yes" : "NO");

  // Marginal check per class.
  const auto in_realized = in_degrees_of(arcs, dist.num_vertices());
  const auto out_realized = out_degrees_of(arcs, dist.num_vertices());
  std::printf("%-18s %10s %10s %10s %10s\n", "class(in,out,n)", "in_tgt",
              "in_avg", "out_tgt", "out_avg");
  for (std::size_t c = 0; c < dist.num_classes(); ++c) {
    const auto& cls = dist.class_at(c);
    double in_sum = 0, out_sum = 0;
    for (std::uint64_t v = dist.class_offset(c);
         v < dist.class_offset(c) + cls.count; ++v) {
      in_sum += static_cast<double>(in_realized[v]);
      out_sum += static_cast<double>(out_realized[v]);
    }
    const double count = static_cast<double>(cls.count);
    std::printf("(%3llu,%3llu)x%-7llu %10llu %10.2f %10llu %10.2f\n",
                static_cast<unsigned long long>(cls.in_degree),
                static_cast<unsigned long long>(cls.out_degree),
                static_cast<unsigned long long>(cls.count),
                static_cast<unsigned long long>(cls.in_degree),
                in_sum / count,
                static_cast<unsigned long long>(cls.out_degree),
                out_sum / count);
  }

  // Exact baseline for comparison: same degrees, maximally structured.
  const ArcList exact = kleitman_wang(dist.in_sequence(), dist.out_sequence());
  std::printf("Kleitman-Wang exact realization: %zu arcs, simple=%s\n",
              exact.size(), is_simple(exact) ? "yes" : "NO");
  std::printf("reciprocity: null model %.4f vs greedy construction %.4f\n",
              reciprocity(arcs), reciprocity(exact));
  return 0;
}
