// assortativity_null: Newman-style analysis — is a graph's degree
// assortativity meaningful, or just what its degree sequence forces?
// Measures r on the observed graph, then on a null ensemble with the same
// degrees; the intro's point is that such baselines NEED uniformly random
// simple graphs, not Chung-Lu approximations.
//
//   ./assortativity_null [edge_list.txt] [ensemble_size]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/metrics.hpp"
#include "analysis/motifs.hpp"
#include "core/null_model.hpp"
#include "gen/datasets.hpp"
#include "gen/havel_hakimi.hpp"
#include "io/graph_io.hpp"

int main(int argc, char** argv) {
  using namespace nullgraph;
  EdgeList observed;
  std::string label;
  if (argc > 1 && std::string(argv[1]) != "-") {
    observed = read_edge_list_file(argv[1]);
    label = argv[1];
  } else {
    // Demo: Havel-Hakimi graphs are strongly assortative by construction
    // (hubs connect to hubs first), a perfect subject for the null test.
    observed = havel_hakimi(as20_like());
    label = "Havel-Hakimi(as20-like)";
  }
  const int ensemble = argc > 2 ? std::atoi(argv[2]) : 25;

  const double observed_r = degree_assortativity(observed);
  std::printf("%s: %zu edges, assortativity r = %+.4f\n", label.c_str(),
              observed.size(), observed_r);

  const std::size_t n = vertex_count(observed);
  const auto degrees = degrees_of(observed, n);
  EnsembleStats stats;
  for (int s = 0; s < ensemble; ++s) {
    GenerateConfig config;
    config.seed = 31415 + static_cast<std::uint64_t>(s);
    config.swap_iterations = 8;
    const GenerateResult null_graph = generate_for_sequence(
        std::vector<std::uint64_t>(degrees.begin(), degrees.end()), config);
    stats.add(degree_assortativity(null_graph.edges));
  }
  std::printf("null ensemble (%d samples): r = %+.4f +- %.4f\n", ensemble,
              stats.mean(), stats.stddev());
  const double z = z_score(observed_r, stats.mean(), stats.stddev());
  std::printf("z-score: %+.2f -> the observed mixing pattern is %s\n", z,
              std::abs(z) > 3 ? "NOT explained by the degree sequence alone"
                              : "consistent with the degree sequence");
  return 0;
}
