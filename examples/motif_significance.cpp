// motif_significance: the introduction's motivating application (Milo et
// al.). Take an observed graph, build an ensemble of null models with the
// same degree sequence, and report the triangle-count z-score: a motif is
// "significant" when the observed count is far outside the null ensemble.
//
//   ./motif_significance [edge_list.txt] [ensemble_size]
//
// Without a file, a demo graph with planted clustering (an LFR-like
// community graph) is used — communities create triangles that a degree-
// preserving null model cannot explain.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/motifs.hpp"
#include "core/null_model.hpp"
#include "ds/csr_graph.hpp"
#include "io/graph_io.hpp"
#include "lfr/lfr.hpp"

int main(int argc, char** argv) {
  using namespace nullgraph;
  EdgeList observed;
  if (argc > 1 && std::string(argv[1]) != "-") {
    observed = read_edge_list_file(argv[1]);
  } else {
    LfrParams params;
    params.n = 4000;
    params.mu = 0.15;  // strong communities -> many triangles
    params.dmin = 4;
    params.dmax = 80;
    params.cmin = 30;
    params.cmax = 200;
    observed = generate_lfr(params).edges;
    std::printf("demo graph: LFR-like with mu=%.2f\n", params.mu);
  }
  const int ensemble = argc > 2 ? std::atoi(argv[2]) : 20;

  const std::size_t n = vertex_count(observed);
  const CsrGraph graph(observed, n);
  const auto observed_triangles =
      static_cast<double>(count_triangles(graph));
  std::printf("observed: %zu vertices, %zu edges, %.0f triangles, "
              "clustering %.4f\n",
              graph.num_vertices(), observed.size(), observed_triangles,
              global_clustering(graph));

  // Null ensemble: same degree sequence, uniformly random topology.
  const auto degrees = degrees_of(observed, n);
  std::vector<std::uint64_t> degree_targets(degrees.begin(), degrees.end());
  EnsembleStats triangle_stats, clustering_stats;
  for (int s = 0; s < ensemble; ++s) {
    GenerateConfig config;
    config.seed = 4242 + static_cast<std::uint64_t>(s);
    config.swap_iterations = 8;
    const GenerateResult null_graph =
        generate_for_sequence(degree_targets, config);
    const CsrGraph null_csr(null_graph.edges, n);
    triangle_stats.add(static_cast<double>(count_triangles(null_csr)));
    clustering_stats.add(global_clustering(null_csr));
  }

  std::printf("null model (%d samples): triangles %.1f +- %.1f, clustering "
              "%.4f\n",
              ensemble, triangle_stats.mean(), triangle_stats.stddev(),
              clustering_stats.mean());
  const double z = z_score(observed_triangles, triangle_stats.mean(),
                           triangle_stats.stddev());
  std::printf("triangle z-score: %+.2f  -> %s\n", z,
              z > 3 ? "SIGNIFICANT motif (graph is more clustered than "
                      "its degrees explain)"
                    : "not significant at 3 sigma");
  return 0;
}
