// quickstart: the 30-second tour. Build a skewed degree distribution,
// generate a uniformly random simple graph matching it (Algorithm IV.1),
// and print what came out.
//
//   ./quickstart [n] [dmax] [swap_iterations]

#include <cstdio>
#include <cstdlib>

#include "analysis/gini.hpp"
#include "analysis/metrics.hpp"
#include "core/null_model.hpp"
#include "gen/powerlaw.hpp"

int main(int argc, char** argv) {
  using namespace nullgraph;
  PowerlawParams degrees;
  degrees.n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100'000;
  degrees.gamma = 2.3;
  degrees.dmin = 1;
  degrees.dmax = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1'000;

  const DegreeDistribution dist = powerlaw_distribution(degrees);
  std::printf("input distribution: n=%llu m=%llu d_avg=%.2f d_max=%llu |D|=%zu\n",
              static_cast<unsigned long long>(dist.num_vertices()),
              static_cast<unsigned long long>(dist.num_edges()),
              dist.average_degree(),
              static_cast<unsigned long long>(dist.max_degree()),
              dist.num_classes());

  GenerateConfig config;
  config.seed = 1;
  config.swap_iterations =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 10;
  const GenerateResult result = generate_null_graph(dist, config);

  const QualityErrors errors = quality_errors(dist, result.edges);
  std::printf("output graph:       m=%zu (err %.2f%%)  d_max err %.2f%%  "
              "gini err %.2f%%  simple=%s\n",
              result.edges.size(), 100 * errors.edge_count,
              100 * errors.max_degree, 100 * errors.gini,
              is_simple(result.edges) ? "yes" : "NO");
  std::printf("probability solver: max class residual %.3f%%, expected-edge "
              "error %.3f%%\n",
              100 * result.probability_diagnostics.max_relative_degree_error,
              100 * result.probability_diagnostics.relative_edge_error);
  for (const auto& [phase, seconds] : result.timing.phases())
    std::printf("phase %-16s %8.3f s\n", phase.c_str(), seconds);
  std::printf("swaps committed: %zu over %zu iterations\n",
              result.swap_stats.total_swapped(),
              result.swap_stats.iterations.size());
  return 0;
}
