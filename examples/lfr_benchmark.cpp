// lfr_benchmark: Section VI — generate LFR-like community-detection
// benchmark graphs across a sweep of mixing parameters and verify that the
// layered null-model construction hits the requested mixing while keeping
// the degree distribution.
//
//   ./lfr_benchmark [n] [output_prefix]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/gini.hpp"
#include "ds/edge_list.hpp"
#include "io/graph_io.hpp"
#include "lfr/lfr.hpp"

int main(int argc, char** argv) {
  using namespace nullgraph;
  const std::uint64_t n =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20'000;
  const std::string prefix = argc > 2 ? argv[2] : "";

  std::printf("%-6s %12s %12s %10s %12s %8s\n", "mu", "edges",
              "communities", "mu_out", "avg_degree", "simple");
  for (const double mu : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6}) {
    LfrParams params;
    params.n = n;
    params.degree_exponent = 2.5;
    params.dmin = 5;
    params.dmax = 100;
    params.community_exponent = 1.5;
    params.cmin = 50;
    params.cmax = 800;
    params.mu = mu;
    params.seed = 7;
    const LfrGraph graph = generate_lfr(params);
    const double avg_degree =
        2.0 * static_cast<double>(graph.edges.size()) / static_cast<double>(n);
    std::printf("%-6.2f %12zu %12zu %10.4f %12.2f %8s\n", mu,
                graph.edges.size(), graph.num_communities, graph.achieved_mu,
                avg_degree, is_simple(graph.edges) ? "yes" : "NO");
    if (!prefix.empty()) {
      const std::string path =
          prefix + "_mu" + std::to_string(mu).substr(0, 4) + ".txt";
      write_edge_list_file(path, graph.edges);
    }
  }
  if (!prefix.empty()) std::printf("edge lists written to %s_mu*.txt\n",
                                   prefix.c_str());
  return 0;
}
