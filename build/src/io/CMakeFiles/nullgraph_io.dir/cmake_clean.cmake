file(REMOVE_RECURSE
  "CMakeFiles/nullgraph_io.dir/graph_io.cpp.o"
  "CMakeFiles/nullgraph_io.dir/graph_io.cpp.o.d"
  "libnullgraph_io.a"
  "libnullgraph_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nullgraph_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
