file(REMOVE_RECURSE
  "libnullgraph_io.a"
)
