# Empty dependencies file for nullgraph_io.
# This may be replaced when dependencies are built.
