file(REMOVE_RECURSE
  "libnullgraph_lfr.a"
)
