# Empty compiler generated dependencies file for nullgraph_lfr.
# This may be replaced when dependencies are built.
