file(REMOVE_RECURSE
  "CMakeFiles/nullgraph_lfr.dir/hierarchical.cpp.o"
  "CMakeFiles/nullgraph_lfr.dir/hierarchical.cpp.o.d"
  "CMakeFiles/nullgraph_lfr.dir/lfr.cpp.o"
  "CMakeFiles/nullgraph_lfr.dir/lfr.cpp.o.d"
  "libnullgraph_lfr.a"
  "libnullgraph_lfr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nullgraph_lfr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
