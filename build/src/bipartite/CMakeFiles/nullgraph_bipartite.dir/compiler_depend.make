# Empty compiler generated dependencies file for nullgraph_bipartite.
# This may be replaced when dependencies are built.
