file(REMOVE_RECURSE
  "libnullgraph_bipartite.a"
)
