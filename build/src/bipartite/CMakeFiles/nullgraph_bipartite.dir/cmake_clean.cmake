file(REMOVE_RECURSE
  "CMakeFiles/nullgraph_bipartite.dir/bipartite.cpp.o"
  "CMakeFiles/nullgraph_bipartite.dir/bipartite.cpp.o.d"
  "libnullgraph_bipartite.a"
  "libnullgraph_bipartite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nullgraph_bipartite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
