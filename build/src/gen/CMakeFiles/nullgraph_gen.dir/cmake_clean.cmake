file(REMOVE_RECURSE
  "CMakeFiles/nullgraph_gen.dir/chung_lu.cpp.o"
  "CMakeFiles/nullgraph_gen.dir/chung_lu.cpp.o.d"
  "CMakeFiles/nullgraph_gen.dir/configuration_model.cpp.o"
  "CMakeFiles/nullgraph_gen.dir/configuration_model.cpp.o.d"
  "CMakeFiles/nullgraph_gen.dir/datasets.cpp.o"
  "CMakeFiles/nullgraph_gen.dir/datasets.cpp.o.d"
  "CMakeFiles/nullgraph_gen.dir/havel_hakimi.cpp.o"
  "CMakeFiles/nullgraph_gen.dir/havel_hakimi.cpp.o.d"
  "CMakeFiles/nullgraph_gen.dir/powerlaw.cpp.o"
  "CMakeFiles/nullgraph_gen.dir/powerlaw.cpp.o.d"
  "libnullgraph_gen.a"
  "libnullgraph_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nullgraph_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
