
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/chung_lu.cpp" "src/gen/CMakeFiles/nullgraph_gen.dir/chung_lu.cpp.o" "gcc" "src/gen/CMakeFiles/nullgraph_gen.dir/chung_lu.cpp.o.d"
  "/root/repo/src/gen/configuration_model.cpp" "src/gen/CMakeFiles/nullgraph_gen.dir/configuration_model.cpp.o" "gcc" "src/gen/CMakeFiles/nullgraph_gen.dir/configuration_model.cpp.o.d"
  "/root/repo/src/gen/datasets.cpp" "src/gen/CMakeFiles/nullgraph_gen.dir/datasets.cpp.o" "gcc" "src/gen/CMakeFiles/nullgraph_gen.dir/datasets.cpp.o.d"
  "/root/repo/src/gen/havel_hakimi.cpp" "src/gen/CMakeFiles/nullgraph_gen.dir/havel_hakimi.cpp.o" "gcc" "src/gen/CMakeFiles/nullgraph_gen.dir/havel_hakimi.cpp.o.d"
  "/root/repo/src/gen/powerlaw.cpp" "src/gen/CMakeFiles/nullgraph_gen.dir/powerlaw.cpp.o" "gcc" "src/gen/CMakeFiles/nullgraph_gen.dir/powerlaw.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ds/CMakeFiles/nullgraph_ds.dir/DependInfo.cmake"
  "/root/repo/build/src/prob/CMakeFiles/nullgraph_prob.dir/DependInfo.cmake"
  "/root/repo/build/src/skip/CMakeFiles/nullgraph_skip.dir/DependInfo.cmake"
  "/root/repo/build/src/permute/CMakeFiles/nullgraph_permute.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nullgraph_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
