# Empty dependencies file for nullgraph_gen.
# This may be replaced when dependencies are built.
