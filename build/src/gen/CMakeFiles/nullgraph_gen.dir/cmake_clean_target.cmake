file(REMOVE_RECURSE
  "libnullgraph_gen.a"
)
