
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/attachment.cpp" "src/analysis/CMakeFiles/nullgraph_analysis.dir/attachment.cpp.o" "gcc" "src/analysis/CMakeFiles/nullgraph_analysis.dir/attachment.cpp.o.d"
  "/root/repo/src/analysis/community.cpp" "src/analysis/CMakeFiles/nullgraph_analysis.dir/community.cpp.o" "gcc" "src/analysis/CMakeFiles/nullgraph_analysis.dir/community.cpp.o.d"
  "/root/repo/src/analysis/components.cpp" "src/analysis/CMakeFiles/nullgraph_analysis.dir/components.cpp.o" "gcc" "src/analysis/CMakeFiles/nullgraph_analysis.dir/components.cpp.o.d"
  "/root/repo/src/analysis/gini.cpp" "src/analysis/CMakeFiles/nullgraph_analysis.dir/gini.cpp.o" "gcc" "src/analysis/CMakeFiles/nullgraph_analysis.dir/gini.cpp.o.d"
  "/root/repo/src/analysis/metrics.cpp" "src/analysis/CMakeFiles/nullgraph_analysis.dir/metrics.cpp.o" "gcc" "src/analysis/CMakeFiles/nullgraph_analysis.dir/metrics.cpp.o.d"
  "/root/repo/src/analysis/motifs.cpp" "src/analysis/CMakeFiles/nullgraph_analysis.dir/motifs.cpp.o" "gcc" "src/analysis/CMakeFiles/nullgraph_analysis.dir/motifs.cpp.o.d"
  "/root/repo/src/analysis/paths.cpp" "src/analysis/CMakeFiles/nullgraph_analysis.dir/paths.cpp.o" "gcc" "src/analysis/CMakeFiles/nullgraph_analysis.dir/paths.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ds/CMakeFiles/nullgraph_ds.dir/DependInfo.cmake"
  "/root/repo/build/src/prob/CMakeFiles/nullgraph_prob.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nullgraph_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
