file(REMOVE_RECURSE
  "libnullgraph_analysis.a"
)
