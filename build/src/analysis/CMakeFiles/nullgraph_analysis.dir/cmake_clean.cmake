file(REMOVE_RECURSE
  "CMakeFiles/nullgraph_analysis.dir/attachment.cpp.o"
  "CMakeFiles/nullgraph_analysis.dir/attachment.cpp.o.d"
  "CMakeFiles/nullgraph_analysis.dir/community.cpp.o"
  "CMakeFiles/nullgraph_analysis.dir/community.cpp.o.d"
  "CMakeFiles/nullgraph_analysis.dir/components.cpp.o"
  "CMakeFiles/nullgraph_analysis.dir/components.cpp.o.d"
  "CMakeFiles/nullgraph_analysis.dir/gini.cpp.o"
  "CMakeFiles/nullgraph_analysis.dir/gini.cpp.o.d"
  "CMakeFiles/nullgraph_analysis.dir/metrics.cpp.o"
  "CMakeFiles/nullgraph_analysis.dir/metrics.cpp.o.d"
  "CMakeFiles/nullgraph_analysis.dir/motifs.cpp.o"
  "CMakeFiles/nullgraph_analysis.dir/motifs.cpp.o.d"
  "CMakeFiles/nullgraph_analysis.dir/paths.cpp.o"
  "CMakeFiles/nullgraph_analysis.dir/paths.cpp.o.d"
  "libnullgraph_analysis.a"
  "libnullgraph_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nullgraph_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
