# Empty compiler generated dependencies file for nullgraph_analysis.
# This may be replaced when dependencies are built.
