# Empty dependencies file for nullgraph_ds.
# This may be replaced when dependencies are built.
