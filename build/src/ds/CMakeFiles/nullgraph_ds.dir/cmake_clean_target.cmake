file(REMOVE_RECURSE
  "libnullgraph_ds.a"
)
