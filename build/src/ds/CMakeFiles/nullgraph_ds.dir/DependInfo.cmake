
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ds/concurrent_hash_set.cpp" "src/ds/CMakeFiles/nullgraph_ds.dir/concurrent_hash_set.cpp.o" "gcc" "src/ds/CMakeFiles/nullgraph_ds.dir/concurrent_hash_set.cpp.o.d"
  "/root/repo/src/ds/csr_graph.cpp" "src/ds/CMakeFiles/nullgraph_ds.dir/csr_graph.cpp.o" "gcc" "src/ds/CMakeFiles/nullgraph_ds.dir/csr_graph.cpp.o.d"
  "/root/repo/src/ds/degree_distribution.cpp" "src/ds/CMakeFiles/nullgraph_ds.dir/degree_distribution.cpp.o" "gcc" "src/ds/CMakeFiles/nullgraph_ds.dir/degree_distribution.cpp.o.d"
  "/root/repo/src/ds/edge_list.cpp" "src/ds/CMakeFiles/nullgraph_ds.dir/edge_list.cpp.o" "gcc" "src/ds/CMakeFiles/nullgraph_ds.dir/edge_list.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/nullgraph_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
