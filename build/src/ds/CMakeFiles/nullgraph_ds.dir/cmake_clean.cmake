file(REMOVE_RECURSE
  "CMakeFiles/nullgraph_ds.dir/concurrent_hash_set.cpp.o"
  "CMakeFiles/nullgraph_ds.dir/concurrent_hash_set.cpp.o.d"
  "CMakeFiles/nullgraph_ds.dir/csr_graph.cpp.o"
  "CMakeFiles/nullgraph_ds.dir/csr_graph.cpp.o.d"
  "CMakeFiles/nullgraph_ds.dir/degree_distribution.cpp.o"
  "CMakeFiles/nullgraph_ds.dir/degree_distribution.cpp.o.d"
  "CMakeFiles/nullgraph_ds.dir/edge_list.cpp.o"
  "CMakeFiles/nullgraph_ds.dir/edge_list.cpp.o.d"
  "libnullgraph_ds.a"
  "libnullgraph_ds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nullgraph_ds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
