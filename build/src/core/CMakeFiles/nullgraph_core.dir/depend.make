# Empty dependencies file for nullgraph_core.
# This may be replaced when dependencies are built.
