file(REMOVE_RECURSE
  "libnullgraph_core.a"
)
