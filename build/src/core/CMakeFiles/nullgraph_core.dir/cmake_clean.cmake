file(REMOVE_RECURSE
  "CMakeFiles/nullgraph_core.dir/double_edge_swap.cpp.o"
  "CMakeFiles/nullgraph_core.dir/double_edge_swap.cpp.o.d"
  "CMakeFiles/nullgraph_core.dir/mixing.cpp.o"
  "CMakeFiles/nullgraph_core.dir/mixing.cpp.o.d"
  "CMakeFiles/nullgraph_core.dir/null_model.cpp.o"
  "CMakeFiles/nullgraph_core.dir/null_model.cpp.o.d"
  "CMakeFiles/nullgraph_core.dir/rewire.cpp.o"
  "CMakeFiles/nullgraph_core.dir/rewire.cpp.o.d"
  "libnullgraph_core.a"
  "libnullgraph_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nullgraph_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
