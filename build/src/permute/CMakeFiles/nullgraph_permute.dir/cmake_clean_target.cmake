file(REMOVE_RECURSE
  "libnullgraph_permute.a"
)
