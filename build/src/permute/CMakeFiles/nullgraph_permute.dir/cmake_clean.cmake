file(REMOVE_RECURSE
  "CMakeFiles/nullgraph_permute.dir/permutation.cpp.o"
  "CMakeFiles/nullgraph_permute.dir/permutation.cpp.o.d"
  "libnullgraph_permute.a"
  "libnullgraph_permute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nullgraph_permute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
