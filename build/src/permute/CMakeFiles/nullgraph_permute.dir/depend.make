# Empty dependencies file for nullgraph_permute.
# This may be replaced when dependencies are built.
