# Empty dependencies file for nullgraph_util.
# This may be replaced when dependencies are built.
