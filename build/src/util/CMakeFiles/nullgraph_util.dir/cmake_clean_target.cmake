file(REMOVE_RECURSE
  "libnullgraph_util.a"
)
