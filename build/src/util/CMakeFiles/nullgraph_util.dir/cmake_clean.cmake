file(REMOVE_RECURSE
  "CMakeFiles/nullgraph_util.dir/parallel.cpp.o"
  "CMakeFiles/nullgraph_util.dir/parallel.cpp.o.d"
  "CMakeFiles/nullgraph_util.dir/rng.cpp.o"
  "CMakeFiles/nullgraph_util.dir/rng.cpp.o.d"
  "CMakeFiles/nullgraph_util.dir/timer.cpp.o"
  "CMakeFiles/nullgraph_util.dir/timer.cpp.o.d"
  "libnullgraph_util.a"
  "libnullgraph_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nullgraph_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
