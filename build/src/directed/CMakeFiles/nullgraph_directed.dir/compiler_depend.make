# Empty compiler generated dependencies file for nullgraph_directed.
# This may be replaced when dependencies are built.
