
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/directed/directed_distribution.cpp" "src/directed/CMakeFiles/nullgraph_directed.dir/directed_distribution.cpp.o" "gcc" "src/directed/CMakeFiles/nullgraph_directed.dir/directed_distribution.cpp.o.d"
  "/root/repo/src/directed/directed_generators.cpp" "src/directed/CMakeFiles/nullgraph_directed.dir/directed_generators.cpp.o" "gcc" "src/directed/CMakeFiles/nullgraph_directed.dir/directed_generators.cpp.o.d"
  "/root/repo/src/directed/directed_swap.cpp" "src/directed/CMakeFiles/nullgraph_directed.dir/directed_swap.cpp.o" "gcc" "src/directed/CMakeFiles/nullgraph_directed.dir/directed_swap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ds/CMakeFiles/nullgraph_ds.dir/DependInfo.cmake"
  "/root/repo/build/src/permute/CMakeFiles/nullgraph_permute.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nullgraph_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
