file(REMOVE_RECURSE
  "CMakeFiles/nullgraph_directed.dir/directed_distribution.cpp.o"
  "CMakeFiles/nullgraph_directed.dir/directed_distribution.cpp.o.d"
  "CMakeFiles/nullgraph_directed.dir/directed_generators.cpp.o"
  "CMakeFiles/nullgraph_directed.dir/directed_generators.cpp.o.d"
  "CMakeFiles/nullgraph_directed.dir/directed_swap.cpp.o"
  "CMakeFiles/nullgraph_directed.dir/directed_swap.cpp.o.d"
  "libnullgraph_directed.a"
  "libnullgraph_directed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nullgraph_directed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
