file(REMOVE_RECURSE
  "libnullgraph_directed.a"
)
