
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prob/heuristics.cpp" "src/prob/CMakeFiles/nullgraph_prob.dir/heuristics.cpp.o" "gcc" "src/prob/CMakeFiles/nullgraph_prob.dir/heuristics.cpp.o.d"
  "/root/repo/src/prob/probability_matrix.cpp" "src/prob/CMakeFiles/nullgraph_prob.dir/probability_matrix.cpp.o" "gcc" "src/prob/CMakeFiles/nullgraph_prob.dir/probability_matrix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ds/CMakeFiles/nullgraph_ds.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nullgraph_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
