# Empty compiler generated dependencies file for nullgraph_prob.
# This may be replaced when dependencies are built.
