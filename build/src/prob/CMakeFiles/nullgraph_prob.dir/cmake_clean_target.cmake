file(REMOVE_RECURSE
  "libnullgraph_prob.a"
)
