file(REMOVE_RECURSE
  "CMakeFiles/nullgraph_prob.dir/heuristics.cpp.o"
  "CMakeFiles/nullgraph_prob.dir/heuristics.cpp.o.d"
  "CMakeFiles/nullgraph_prob.dir/probability_matrix.cpp.o"
  "CMakeFiles/nullgraph_prob.dir/probability_matrix.cpp.o.d"
  "libnullgraph_prob.a"
  "libnullgraph_prob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nullgraph_prob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
