file(REMOVE_RECURSE
  "CMakeFiles/nullgraph_skip.dir/edge_skip.cpp.o"
  "CMakeFiles/nullgraph_skip.dir/edge_skip.cpp.o.d"
  "CMakeFiles/nullgraph_skip.dir/erdos_renyi.cpp.o"
  "CMakeFiles/nullgraph_skip.dir/erdos_renyi.cpp.o.d"
  "libnullgraph_skip.a"
  "libnullgraph_skip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nullgraph_skip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
