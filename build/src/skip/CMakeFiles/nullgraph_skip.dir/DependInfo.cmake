
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/skip/edge_skip.cpp" "src/skip/CMakeFiles/nullgraph_skip.dir/edge_skip.cpp.o" "gcc" "src/skip/CMakeFiles/nullgraph_skip.dir/edge_skip.cpp.o.d"
  "/root/repo/src/skip/erdos_renyi.cpp" "src/skip/CMakeFiles/nullgraph_skip.dir/erdos_renyi.cpp.o" "gcc" "src/skip/CMakeFiles/nullgraph_skip.dir/erdos_renyi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ds/CMakeFiles/nullgraph_ds.dir/DependInfo.cmake"
  "/root/repo/build/src/prob/CMakeFiles/nullgraph_prob.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nullgraph_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
