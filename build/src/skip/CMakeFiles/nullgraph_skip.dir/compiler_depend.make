# Empty compiler generated dependencies file for nullgraph_skip.
# This may be replaced when dependencies are built.
