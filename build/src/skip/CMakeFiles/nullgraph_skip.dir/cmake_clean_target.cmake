file(REMOVE_RECURSE
  "libnullgraph_skip.a"
)
