# Empty dependencies file for nullgraph_cli.
# This may be replaced when dependencies are built.
