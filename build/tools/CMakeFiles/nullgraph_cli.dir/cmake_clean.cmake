file(REMOVE_RECURSE
  "CMakeFiles/nullgraph_cli.dir/nullgraph_cli.cpp.o"
  "CMakeFiles/nullgraph_cli.dir/nullgraph_cli.cpp.o.d"
  "nullgraph"
  "nullgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nullgraph_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
