# Empty dependencies file for bench_fig5_endtoend.
# This may be replaced when dependencies are built.
