file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_endtoend.dir/bench_fig5_endtoend.cpp.o"
  "CMakeFiles/bench_fig5_endtoend.dir/bench_fig5_endtoend.cpp.o.d"
  "bench_fig5_endtoend"
  "bench_fig5_endtoend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_endtoend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
