file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_phases.dir/bench_fig6_phases.cpp.o"
  "CMakeFiles/bench_fig6_phases.dir/bench_fig6_phases.cpp.o.d"
  "bench_fig6_phases"
  "bench_fig6_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
