# Empty dependencies file for bench_rewire.
# This may be replaced when dependencies are built.
