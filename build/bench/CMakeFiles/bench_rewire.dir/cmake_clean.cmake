file(REMOVE_RECURSE
  "CMakeFiles/bench_rewire.dir/bench_rewire.cpp.o"
  "CMakeFiles/bench_rewire.dir/bench_rewire.cpp.o.d"
  "bench_rewire"
  "bench_rewire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rewire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
