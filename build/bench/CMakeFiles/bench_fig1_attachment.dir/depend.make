# Empty dependencies file for bench_fig1_attachment.
# This may be replaced when dependencies are built.
