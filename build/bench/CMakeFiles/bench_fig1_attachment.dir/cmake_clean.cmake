file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_attachment.dir/bench_fig1_attachment.cpp.o"
  "CMakeFiles/bench_fig1_attachment.dir/bench_fig1_attachment.cpp.o.d"
  "bench_fig1_attachment"
  "bench_fig1_attachment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_attachment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
