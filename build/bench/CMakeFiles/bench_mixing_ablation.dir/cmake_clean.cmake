file(REMOVE_RECURSE
  "CMakeFiles/bench_mixing_ablation.dir/bench_mixing_ablation.cpp.o"
  "CMakeFiles/bench_mixing_ablation.dir/bench_mixing_ablation.cpp.o.d"
  "bench_mixing_ablation"
  "bench_mixing_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mixing_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
