# Empty dependencies file for bench_mixing_ablation.
# This may be replaced when dependencies are built.
