# Empty compiler generated dependencies file for bench_lfr.
# This may be replaced when dependencies are built.
