file(REMOVE_RECURSE
  "CMakeFiles/bench_lfr.dir/bench_lfr.cpp.o"
  "CMakeFiles/bench_lfr.dir/bench_lfr.cpp.o.d"
  "bench_lfr"
  "bench_lfr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lfr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
