# Empty compiler generated dependencies file for bench_livejournal_swaps.
# This may be replaced when dependencies are built.
