file(REMOVE_RECURSE
  "CMakeFiles/bench_livejournal_swaps.dir/bench_livejournal_swaps.cpp.o"
  "CMakeFiles/bench_livejournal_swaps.dir/bench_livejournal_swaps.cpp.o.d"
  "bench_livejournal_swaps"
  "bench_livejournal_swaps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_livejournal_swaps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
