file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_hashset.dir/bench_ablation_hashset.cpp.o"
  "CMakeFiles/bench_ablation_hashset.dir/bench_ablation_hashset.cpp.o.d"
  "bench_ablation_hashset"
  "bench_ablation_hashset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_hashset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
