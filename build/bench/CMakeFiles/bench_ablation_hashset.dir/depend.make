# Empty dependencies file for bench_ablation_hashset.
# This may be replaced when dependencies are built.
