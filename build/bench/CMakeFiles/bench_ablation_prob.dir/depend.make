# Empty dependencies file for bench_ablation_prob.
# This may be replaced when dependencies are built.
