file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_prob.dir/bench_ablation_prob.cpp.o"
  "CMakeFiles/bench_ablation_prob.dir/bench_ablation_prob.cpp.o.d"
  "bench_ablation_prob"
  "bench_ablation_prob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_prob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
