file(REMOVE_RECURSE
  "CMakeFiles/test_mixing.dir/test_mixing.cpp.o"
  "CMakeFiles/test_mixing.dir/test_mixing.cpp.o.d"
  "test_mixing"
  "test_mixing.pdb"
  "test_mixing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mixing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
