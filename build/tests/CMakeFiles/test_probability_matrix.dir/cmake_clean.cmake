file(REMOVE_RECURSE
  "CMakeFiles/test_probability_matrix.dir/test_probability_matrix.cpp.o"
  "CMakeFiles/test_probability_matrix.dir/test_probability_matrix.cpp.o.d"
  "test_probability_matrix"
  "test_probability_matrix.pdb"
  "test_probability_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_probability_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
