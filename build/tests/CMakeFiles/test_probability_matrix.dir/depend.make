# Empty dependencies file for test_probability_matrix.
# This may be replaced when dependencies are built.
