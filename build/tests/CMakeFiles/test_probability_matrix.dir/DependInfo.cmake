
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_probability_matrix.cpp" "tests/CMakeFiles/test_probability_matrix.dir/test_probability_matrix.cpp.o" "gcc" "tests/CMakeFiles/test_probability_matrix.dir/test_probability_matrix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/io/CMakeFiles/nullgraph_io.dir/DependInfo.cmake"
  "/root/repo/build/src/lfr/CMakeFiles/nullgraph_lfr.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/nullgraph_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/nullgraph_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/skip/CMakeFiles/nullgraph_skip.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/nullgraph_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/prob/CMakeFiles/nullgraph_prob.dir/DependInfo.cmake"
  "/root/repo/build/src/bipartite/CMakeFiles/nullgraph_bipartite.dir/DependInfo.cmake"
  "/root/repo/build/src/directed/CMakeFiles/nullgraph_directed.dir/DependInfo.cmake"
  "/root/repo/build/src/ds/CMakeFiles/nullgraph_ds.dir/DependInfo.cmake"
  "/root/repo/build/src/permute/CMakeFiles/nullgraph_permute.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nullgraph_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
