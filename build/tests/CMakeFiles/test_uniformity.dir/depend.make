# Empty dependencies file for test_uniformity.
# This may be replaced when dependencies are built.
