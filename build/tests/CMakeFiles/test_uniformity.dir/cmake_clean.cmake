file(REMOVE_RECURSE
  "CMakeFiles/test_uniformity.dir/test_uniformity.cpp.o"
  "CMakeFiles/test_uniformity.dir/test_uniformity.cpp.o.d"
  "test_uniformity"
  "test_uniformity.pdb"
  "test_uniformity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uniformity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
