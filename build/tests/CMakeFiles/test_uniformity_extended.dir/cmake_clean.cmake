file(REMOVE_RECURSE
  "CMakeFiles/test_uniformity_extended.dir/test_uniformity_extended.cpp.o"
  "CMakeFiles/test_uniformity_extended.dir/test_uniformity_extended.cpp.o.d"
  "test_uniformity_extended"
  "test_uniformity_extended.pdb"
  "test_uniformity_extended[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uniformity_extended.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
