# Empty compiler generated dependencies file for test_uniformity_extended.
# This may be replaced when dependencies are built.
