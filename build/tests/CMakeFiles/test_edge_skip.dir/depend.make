# Empty dependencies file for test_edge_skip.
# This may be replaced when dependencies are built.
