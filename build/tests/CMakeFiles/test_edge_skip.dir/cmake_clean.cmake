file(REMOVE_RECURSE
  "CMakeFiles/test_edge_skip.dir/test_edge_skip.cpp.o"
  "CMakeFiles/test_edge_skip.dir/test_edge_skip.cpp.o.d"
  "test_edge_skip"
  "test_edge_skip.pdb"
  "test_edge_skip[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_edge_skip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
