# Empty compiler generated dependencies file for test_powerlaw.
# This may be replaced when dependencies are built.
