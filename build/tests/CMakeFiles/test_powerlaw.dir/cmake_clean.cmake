file(REMOVE_RECURSE
  "CMakeFiles/test_powerlaw.dir/test_powerlaw.cpp.o"
  "CMakeFiles/test_powerlaw.dir/test_powerlaw.cpp.o.d"
  "test_powerlaw"
  "test_powerlaw.pdb"
  "test_powerlaw[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_powerlaw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
