file(REMOVE_RECURSE
  "CMakeFiles/test_gini.dir/test_gini.cpp.o"
  "CMakeFiles/test_gini.dir/test_gini.cpp.o.d"
  "test_gini"
  "test_gini.pdb"
  "test_gini[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gini.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
