file(REMOVE_RECURSE
  "CMakeFiles/test_prefix_sum.dir/test_prefix_sum.cpp.o"
  "CMakeFiles/test_prefix_sum.dir/test_prefix_sum.cpp.o.d"
  "test_prefix_sum"
  "test_prefix_sum.pdb"
  "test_prefix_sum[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prefix_sum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
