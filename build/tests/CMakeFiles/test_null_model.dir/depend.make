# Empty dependencies file for test_null_model.
# This may be replaced when dependencies are built.
