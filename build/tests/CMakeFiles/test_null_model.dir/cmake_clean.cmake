file(REMOVE_RECURSE
  "CMakeFiles/test_null_model.dir/test_null_model.cpp.o"
  "CMakeFiles/test_null_model.dir/test_null_model.cpp.o.d"
  "test_null_model"
  "test_null_model.pdb"
  "test_null_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_null_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
