# Empty compiler generated dependencies file for test_lfr.
# This may be replaced when dependencies are built.
