file(REMOVE_RECURSE
  "CMakeFiles/test_lfr.dir/test_lfr.cpp.o"
  "CMakeFiles/test_lfr.dir/test_lfr.cpp.o.d"
  "test_lfr"
  "test_lfr.pdb"
  "test_lfr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lfr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
