file(REMOVE_RECURSE
  "CMakeFiles/test_edge_skip_distribution.dir/test_edge_skip_distribution.cpp.o"
  "CMakeFiles/test_edge_skip_distribution.dir/test_edge_skip_distribution.cpp.o.d"
  "test_edge_skip_distribution"
  "test_edge_skip_distribution.pdb"
  "test_edge_skip_distribution[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_edge_skip_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
