# Empty compiler generated dependencies file for test_edge_skip_distribution.
# This may be replaced when dependencies are built.
