file(REMOVE_RECURSE
  "CMakeFiles/test_attachment.dir/test_attachment.cpp.o"
  "CMakeFiles/test_attachment.dir/test_attachment.cpp.o.d"
  "test_attachment"
  "test_attachment.pdb"
  "test_attachment[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_attachment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
