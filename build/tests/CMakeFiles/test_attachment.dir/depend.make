# Empty dependencies file for test_attachment.
# This may be replaced when dependencies are built.
