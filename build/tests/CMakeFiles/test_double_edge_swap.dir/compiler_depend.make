# Empty compiler generated dependencies file for test_double_edge_swap.
# This may be replaced when dependencies are built.
