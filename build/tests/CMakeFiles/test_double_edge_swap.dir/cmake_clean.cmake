file(REMOVE_RECURSE
  "CMakeFiles/test_double_edge_swap.dir/test_double_edge_swap.cpp.o"
  "CMakeFiles/test_double_edge_swap.dir/test_double_edge_swap.cpp.o.d"
  "test_double_edge_swap"
  "test_double_edge_swap.pdb"
  "test_double_edge_swap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_double_edge_swap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
