# Empty compiler generated dependencies file for test_havel_hakimi.
# This may be replaced when dependencies are built.
