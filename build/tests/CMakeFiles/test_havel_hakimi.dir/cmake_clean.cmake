file(REMOVE_RECURSE
  "CMakeFiles/test_havel_hakimi.dir/test_havel_hakimi.cpp.o"
  "CMakeFiles/test_havel_hakimi.dir/test_havel_hakimi.cpp.o.d"
  "test_havel_hakimi"
  "test_havel_hakimi.pdb"
  "test_havel_hakimi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_havel_hakimi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
