# Empty compiler generated dependencies file for test_configuration_model.
# This may be replaced when dependencies are built.
