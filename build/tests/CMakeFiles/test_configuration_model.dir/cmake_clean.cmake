file(REMOVE_RECURSE
  "CMakeFiles/test_configuration_model.dir/test_configuration_model.cpp.o"
  "CMakeFiles/test_configuration_model.dir/test_configuration_model.cpp.o.d"
  "test_configuration_model"
  "test_configuration_model.pdb"
  "test_configuration_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_configuration_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
