file(REMOVE_RECURSE
  "CMakeFiles/test_concurrent_hash_set.dir/test_concurrent_hash_set.cpp.o"
  "CMakeFiles/test_concurrent_hash_set.dir/test_concurrent_hash_set.cpp.o.d"
  "test_concurrent_hash_set"
  "test_concurrent_hash_set.pdb"
  "test_concurrent_hash_set[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_concurrent_hash_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
