# Empty dependencies file for test_concurrent_hash_set.
# This may be replaced when dependencies are built.
