# Empty compiler generated dependencies file for test_prob_heuristics.
# This may be replaced when dependencies are built.
