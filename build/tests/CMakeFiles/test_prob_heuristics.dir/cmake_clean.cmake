file(REMOVE_RECURSE
  "CMakeFiles/test_prob_heuristics.dir/test_prob_heuristics.cpp.o"
  "CMakeFiles/test_prob_heuristics.dir/test_prob_heuristics.cpp.o.d"
  "test_prob_heuristics"
  "test_prob_heuristics.pdb"
  "test_prob_heuristics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prob_heuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
