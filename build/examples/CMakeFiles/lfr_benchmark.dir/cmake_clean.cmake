file(REMOVE_RECURSE
  "CMakeFiles/lfr_benchmark.dir/lfr_benchmark.cpp.o"
  "CMakeFiles/lfr_benchmark.dir/lfr_benchmark.cpp.o.d"
  "lfr_benchmark"
  "lfr_benchmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfr_benchmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
