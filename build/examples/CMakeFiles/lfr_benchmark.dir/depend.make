# Empty dependencies file for lfr_benchmark.
# This may be replaced when dependencies are built.
