file(REMOVE_RECURSE
  "CMakeFiles/shuffle_edges.dir/shuffle_edges.cpp.o"
  "CMakeFiles/shuffle_edges.dir/shuffle_edges.cpp.o.d"
  "shuffle_edges"
  "shuffle_edges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shuffle_edges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
