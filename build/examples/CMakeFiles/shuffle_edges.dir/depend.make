# Empty dependencies file for shuffle_edges.
# This may be replaced when dependencies are built.
