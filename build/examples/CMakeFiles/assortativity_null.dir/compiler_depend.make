# Empty compiler generated dependencies file for assortativity_null.
# This may be replaced when dependencies are built.
