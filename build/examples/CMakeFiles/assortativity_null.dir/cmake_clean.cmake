file(REMOVE_RECURSE
  "CMakeFiles/assortativity_null.dir/assortativity_null.cpp.o"
  "CMakeFiles/assortativity_null.dir/assortativity_null.cpp.o.d"
  "assortativity_null"
  "assortativity_null.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assortativity_null.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
