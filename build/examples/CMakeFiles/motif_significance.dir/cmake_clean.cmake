file(REMOVE_RECURSE
  "CMakeFiles/motif_significance.dir/motif_significance.cpp.o"
  "CMakeFiles/motif_significance.dir/motif_significance.cpp.o.d"
  "motif_significance"
  "motif_significance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motif_significance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
