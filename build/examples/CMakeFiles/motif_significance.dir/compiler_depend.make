# Empty compiler generated dependencies file for motif_significance.
# This may be replaced when dependencies are built.
