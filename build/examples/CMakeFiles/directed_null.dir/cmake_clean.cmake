file(REMOVE_RECURSE
  "CMakeFiles/directed_null.dir/directed_null.cpp.o"
  "CMakeFiles/directed_null.dir/directed_null.cpp.o.d"
  "directed_null"
  "directed_null.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/directed_null.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
