# Empty compiler generated dependencies file for directed_null.
# This may be replaced when dependencies are built.
