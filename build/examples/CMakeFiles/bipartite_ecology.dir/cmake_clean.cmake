file(REMOVE_RECURSE
  "CMakeFiles/bipartite_ecology.dir/bipartite_ecology.cpp.o"
  "CMakeFiles/bipartite_ecology.dir/bipartite_ecology.cpp.o.d"
  "bipartite_ecology"
  "bipartite_ecology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bipartite_ecology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
