# Empty dependencies file for bipartite_ecology.
# This may be replaced when dependencies are built.
