#!/usr/bin/env python3
"""Schema and ordering validator for a nullgraph structured event stream.

Checks every JSONL line from `--events-out` (batch or serve) against the
schema contract in DESIGN.md section 12:

  - each line parses as a JSON object;
  - keys come from the fixed schema set, `ts_us` and `event` present;
  - `event` is a known kind; integer fields are non-negative integers;
  - `ts_us` never decreases (monotonic clock, single writer);
  - per serve job: job_admitted precedes every other event of that job,
    and nothing follows its job_completed/job_evicted;
  - phase_start/phase_end bracket per (job, phase): no end without a
    start, no unclosed start at end-of-stream (batch phases nest-free).

Exit 0 when the stream is valid, 1 with one diagnostic per line otherwise.
--allow-partial accepts a torn final line and unclosed phases/jobs — the
expected shape of a SIGKILLed writer's surviving prefix (each line is
flushed whole, so ONLY the final line may be torn).

Used by the telemetry tier of scripts/check.sh and the serve chaos drill.
"""

import argparse
import json
import sys

KNOWN_KINDS = {
    "job_admitted", "job_evicted", "job_completed", "phase_start",
    "phase_end", "curtailment", "degradation", "shard_commit", "checkpoint",
}
SCHEMA_KEYS = ("ts_us", "event", "job", "trace", "phase", "value", "detail")
INT_KEYS = ("ts_us", "job", "trace", "value")
TERMINAL_KINDS = ("job_completed", "job_evicted")


def validate(stream, allow_partial):
    errors = []
    last_ts = None
    admitted = set()
    finished = {}  # job id -> kind that closed it
    open_phases = {}  # (job, phase) -> line number of the phase_start
    lines = stream.read().split("\n")
    torn = lines and lines[-1] != ""
    if torn and not allow_partial:
        errors.append(f"line {len(lines)}: torn final line (no newline); "
                      "rerun with --allow-partial for crash prefixes")
    body = lines[:-1] if lines else []

    for lineno, line in enumerate(body, start=1):
        if not line.strip():
            errors.append(f"line {lineno}: blank line")
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as err:
            errors.append(f"line {lineno}: not valid JSON: {err}")
            continue
        if not isinstance(event, dict):
            errors.append(f"line {lineno}: not a JSON object")
            continue

        extra = set(event) - set(SCHEMA_KEYS)
        if extra:
            errors.append(f"line {lineno}: unknown key(s) "
                          f"{', '.join(sorted(extra))}")
        for key in ("ts_us", "event"):
            if key not in event:
                errors.append(f"line {lineno}: missing required '{key}'")
        for key in INT_KEYS:
            if key in event and (not isinstance(event[key], int)
                                 or isinstance(event[key], bool)
                                 or event[key] < 0):
                errors.append(f"line {lineno}: '{key}' must be a "
                              "non-negative integer")
        kind = event.get("event")
        if kind is not None and kind not in KNOWN_KINDS:
            errors.append(f"line {lineno}: unknown event kind {kind!r}")

        ts = event.get("ts_us")
        if isinstance(ts, int):
            if last_ts is not None and ts < last_ts:
                errors.append(f"line {lineno}: ts_us went backwards "
                              f"({ts} < {last_ts})")
            last_ts = ts

        job = event.get("job", 0)
        if isinstance(job, int) and job > 0:
            if kind == "job_admitted":
                if job in admitted:
                    errors.append(f"line {lineno}: job {job} admitted twice")
                admitted.add(job)
            else:
                if job not in admitted:
                    errors.append(f"line {lineno}: job {job} event "
                                  f"'{kind}' before its job_admitted")
                if job in finished:
                    errors.append(f"line {lineno}: job {job} event "
                                  f"'{kind}' after its {finished[job]}")
            if kind in TERMINAL_KINDS:
                finished[job] = kind

        if kind == "phase_start":
            key = (job, event.get("phase", ""))
            if key in open_phases:
                errors.append(f"line {lineno}: phase {key[1]!r} "
                              f"(job {job}) started twice without an end")
            open_phases[key] = lineno
        elif kind == "phase_end":
            key = (job, event.get("phase", ""))
            if key not in open_phases:
                errors.append(f"line {lineno}: phase_end {key[1]!r} "
                              f"(job {job}) without a phase_start")
            else:
                del open_phases[key]

    if not allow_partial:
        for (job, phase), lineno in sorted(open_phases.items()):
            errors.append(f"line {lineno}: phase {phase!r} (job {job}) "
                          "never ended")
    return errors, len(body)


def main():
    parser = argparse.ArgumentParser(
        description="validate a nullgraph structured event stream")
    parser.add_argument("path", help="events JSONL file, or - for stdin")
    parser.add_argument("--allow-partial", action="store_true",
                        help="accept a torn final line and unclosed "
                             "phases/jobs (a crashed writer's prefix)")
    parser.add_argument("--min-events", type=int, default=0,
                        help="fail unless at least N valid lines were seen")
    args = parser.parse_args()

    stream = sys.stdin if args.path == "-" else open(
        args.path, "r", encoding="utf-8")
    try:
        errors, count = validate(stream, args.allow_partial)
    finally:
        if stream is not sys.stdin:
            stream.close()

    if count < args.min_events:
        errors.append(f"stream has {count} event line(s), expected at "
                      f"least {args.min_events}")
    for error in errors:
        sys.stderr.write(f"validate_events: {error}\n")
    if errors:
        sys.stderr.write(f"validate_events: {args.path}: "
                         f"{len(errors)} problem(s) in {count} line(s)\n")
        return 1
    print(f"validate_events: {args.path}: {count} event(s) ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
