"""C++ source handling shared by the lint and analysis drivers: the
comment/string stripper, a line-preserving tokenizer, and the scanned
source tree.

Rules match against *stripped* lines (comments and string-literal contents
blanked, line structure preserved) so prose about a banned construct never
trips a rule, while justification/sanction checks look at the *raw* lines
where the comments live.
"""

from __future__ import annotations

import dataclasses
import pathlib
import re

#: Every C++ translation-unit / header extension the project uses or could
#: grow. The old shell lint only matched .cpp/.hpp; .h/.cc/.cxx are covered
#: so a renamed file cannot silently escape confinement.
CXX_EXTENSIONS = (".cpp", ".hpp", ".h", ".cc", ".cxx")

#: Top-level directories scanned relative to the repo root.
SOURCE_TREES = ("src", "tests", "bench", "examples", "tools")

#: Valid raw-string encoding prefixes: R"..." itself plus u8R/uR/UR/LR.
_RAW_PREFIXES = ("", "u8", "u", "U", "L")

_IDENT_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_")


def _is_raw_string_opener(text: str, i: int) -> bool:
    """True when text[i] == 'R' and text[i+1] == '"' open a raw string.

    An ``R"`` pair is a raw-string opener only when the ``R`` is the whole
    identifier-like run, or completes one of the encoding prefixes
    ``u8R``/``uR``/``UR``/``LR``. An identifier merely *ending* in R before
    a string literal (``FOUR"..."`` under macro concatenation, ``BAR"x"``)
    is ordinary code followed by an ordinary string — treating it as raw
    used to corrupt stripping for the rest of the file.
    """
    # Walk back over the maximal identifier run ending at (and including)
    # the 'R', then require the run minus the trailing R to be a valid
    # encoding prefix.
    start = i
    while start > 0 and text[start - 1] in _IDENT_CHARS:
        start -= 1
    return text[start:i] in _RAW_PREFIXES


def strip_comments_and_strings(text: str) -> str:
    """Blank out comment bodies and string/char literal contents.

    Newlines are preserved (including inside block comments and raw
    strings) so line numbers in the stripped text match the original.
    Replaced characters become spaces.
    """
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line_comment | block_comment | string | char | raw_string
    raw_delim = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == "R" and nxt == '"' and _is_raw_string_opener(text, i):
                # Raw string literal: [u8|u|U|L]R"delim( ... )delim". The
                # encoding prefix (if any) was already emitted as code,
                # which is fine: only the quoted contents need blanking.
                close = text.find("(", i + 2)
                if close != -1:
                    raw_delim = ")" + text[i + 2 : close] + '"'
                    state = "raw_string"
                    out.append(" " * (close - i + 1))
                    i = close + 1
                    continue
            if c == '"':
                state = "string"
                out.append(c)
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(c)
                i += 1
                continue
            out.append(c)
            i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        elif state == "string":
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == '"':
                state = "code"
                out.append(c)
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        elif state == "char":
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == "'":
                state = "code"
                out.append(c)
                i += 1
            else:
                out.append(" ")
                i += 1
        elif state == "raw_string":
            if text.startswith(raw_delim, i):
                state = "code"
                out.append(" " * len(raw_delim))
                i += len(raw_delim)
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out)


@dataclasses.dataclass(frozen=True)
class Token:
    """One lexical token from *stripped* source.

    kind: 'ident' (identifiers, possibly ::-qualified), 'number', 'punct'
    (operators/punctuation, multi-char operators kept whole), or 'pp'
    (a whole preprocessor directive line, value = directive name).
    """

    kind: str
    value: str
    line: int


# Qualified identifiers are lexed as ONE token ("std::memcpy",
# "exec::for_chunks", "::open", "obs::FlightRecorder") so call-name
# resolution never has to reassemble them. Template arguments are NOT part
# of the token; the parser skips <...> runs where needed.
_TOKEN_RE = re.compile(
    r"""
      (?P<pp>     ^[ \t]*\#[^\n]*)
    | (?P<ident>  (?:::)?[A-Za-z_][A-Za-z0-9_]*(?:::[A-Za-z_][A-Za-z0-9_]*)*)
    | (?P<number> \.?\d(?:[\w.]|[eEpP][+-])*)
    | (?P<punct>  ->\*|->|\+\+|--|<<=|>>=|<=>|<<|>>|<=|>=|==|!=|&&|\|\||
                  \+=|-=|\*=|/=|%=|&=|\|=|\^=|::|\.\.\.|\.\*
                  |[{}()\[\];,<>=+\-*/%!&|^~?:.])
    """,
    re.VERBOSE | re.MULTILINE)


def tokenize(stripped: str) -> list[Token]:
    """Tokenize stripped C++ text, tagging each token with its 1-based line.

    Works on the output of :func:`strip_comments_and_strings`: string/char
    literal *contents* are already blanked, so the surviving quote pairs
    lex as punctuation-free gaps; comments are gone entirely.
    """
    tokens: list[Token] = []
    line = 1
    pos = 0
    for match in _TOKEN_RE.finditer(stripped):
        line += stripped.count("\n", pos, match.start())
        pos = match.start()
        kind = match.lastgroup
        value = match.group()
        if kind == "pp":
            directive = value.lstrip()[1:].strip().split(None, 1)
            tokens.append(Token("pp", directive[0] if directive else "",
                                line))
        else:
            tokens.append(Token(kind, value, line))
    return tokens


class SourceFile:
    """One scanned file: repo-relative path plus raw and stripped lines."""

    def __init__(self, rel_path: str, text: str):
        self.path = rel_path
        self.text = text
        self.raw_lines = text.splitlines()
        self.stripped_text = strip_comments_and_strings(text)
        self.code_lines = self.stripped_text.splitlines()
        self._tokens: list[Token] | None = None

    def tokens(self) -> list[Token]:
        """Token stream of the stripped text, lexed on first use."""
        if self._tokens is None:
            self._tokens = tokenize(self.stripped_text)
        return self._tokens

    def in_dir(self, prefix: str) -> bool:
        return self.path.startswith(prefix)

    def is_header(self) -> bool:
        return self.path.endswith((".hpp", ".h"))


class SourceTree:
    """All C++ files under the scanned trees of one root directory."""

    def __init__(self, root: pathlib.Path, trees=SOURCE_TREES):
        self.root = root
        self.files: list[SourceFile] = []
        for tree in trees:
            base = root / tree
            if not base.is_dir():
                continue
            for path in sorted(base.rglob("*")):
                if path.suffix in CXX_EXTENSIONS and path.is_file():
                    rel = path.relative_to(root).as_posix()
                    text = path.read_text(encoding="utf-8", errors="replace")
                    self.files.append(SourceFile(rel, text))
