"""checklib: the shared base of the project's Python static-check tools.

Two consumers sit on top of this package:

  - scripts/lint/      line-level regex lints (PR 5) — fast, per-line,
                       confinement/discipline rules;
  - scripts/analyze/   the semantic analyzer (call-graph proofs over
                       whole-program properties: signal-safety, exec-kernel
                       purity, RNG determinism dataflow, the exit-code
                       contract).

Both emit the same `Diagnostic` shape, scan the same `SourceTree`, and
share one C++ lexer (`strip_comments_and_strings` / `tokenize`), so a
lexer fix or a new source-tree extension lands in every tool at once.
"""

from .cxx import (CXX_EXTENSIONS, SOURCE_TREES, SourceFile, SourceTree,
                  Token, strip_comments_and_strings, tokenize)
from .diagnostics import Diagnostic, diagnostics_to_json

__all__ = [
    "CXX_EXTENSIONS", "SOURCE_TREES", "SourceFile", "SourceTree", "Token",
    "strip_comments_and_strings", "tokenize", "Diagnostic",
    "diagnostics_to_json",
]
