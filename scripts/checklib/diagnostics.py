"""Diagnostic record shared by the lint driver and the semantic analyzer.

Both tools print one diagnostic per line in the same format::

    path:line: [rule-name] message

sorted by (path, line, rule, message) so output is deterministic and
golden-testable, and both offer ``--json`` machine-readable output built
from the same records via :func:`diagnostics_to_json`.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class Diagnostic:
    """One finding: a repo-relative path, 1-based line, rule name, message."""

    path: str
    line: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def sort_diagnostics(diagnostics):
    """Canonical deterministic order used by both drivers."""
    return sorted(diagnostics,
                  key=lambda d: (d.path, d.line, d.rule, d.message))


def diagnostics_to_json(tool, diagnostics, *, rules, files_scanned,
                        extra=None):
    """The shared ``--json`` payload. ``extra`` merges tool-specific keys
    (e.g. the analyzer's frontend name) into the top level."""
    payload = {
        "tool": tool,
        "clean": not diagnostics,
        "files_scanned": files_scanned,
        "rules": list(rules),
        "diagnostics": [
            {"path": d.path, "line": d.line, "rule": d.rule,
             "message": d.message}
            for d in sort_diagnostics(diagnostics)
        ],
    }
    if extra:
        payload.update(extra)
    return payload
