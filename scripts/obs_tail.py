#!/usr/bin/env python3
"""Pretty-print / filter a nullgraph structured event stream (JSONL).

The stream comes from `--events-out FILE` on a batch run or a serve
daemon (see DESIGN.md section 12). Each line is one event:

    {"ts_us":N,"event":"<kind>","job":N,"trace":N,"phase":"...",
     "value":N,"detail":"..."}

Usage:
    scripts/obs_tail.py events.jsonl                  # whole stream
    scripts/obs_tail.py --job 3 events.jsonl          # one job only
    scripts/obs_tail.py --kind curtailment,shard_commit events.jsonl
    scripts/obs_tail.py --follow events.jsonl         # live tail -f
    nullgraph serve ... --events-out /dev/stdout | scripts/obs_tail.py -

Timestamps are absolute CLOCK_MONOTONIC microseconds; the printout rebases
them to the first displayed event so columns read as elapsed seconds.
"""

import argparse
import json
import sys
import time

KNOWN_KINDS = (
    "job_admitted", "job_evicted", "job_completed", "phase_start",
    "phase_end", "curtailment", "degradation", "shard_commit", "checkpoint",
)


def parse_args():
    parser = argparse.ArgumentParser(
        description="filter and pretty-print a nullgraph event stream")
    parser.add_argument("path", help="events JSONL file, or - for stdin")
    parser.add_argument("--job", type=int, default=None,
                        help="only events for this serve job id")
    parser.add_argument("--trace", type=int, default=None,
                        help="only events for this trace id")
    parser.add_argument("--kind", default=None,
                        help="comma-separated event kinds to keep "
                             f"(known: {', '.join(KNOWN_KINDS)})")
    parser.add_argument("--follow", action="store_true",
                        help="keep reading as the file grows (tail -f)")
    parser.add_argument("--raw", action="store_true",
                        help="print matching lines verbatim instead of "
                             "the aligned form")
    return parser.parse_args()


def wanted(event, args, kinds):
    if args.job is not None and event.get("job", 0) != args.job:
        return False
    if args.trace is not None and event.get("trace", 0) != args.trace:
        return False
    if kinds is not None and event.get("event") not in kinds:
        return False
    return True


def render(event, origin_us):
    ts = event.get("ts_us", 0)
    rel_s = (ts - origin_us) / 1e6 if origin_us is not None else 0.0
    parts = [f"{rel_s:10.6f}s", f"{event.get('event', '?'):<14}"]
    if event.get("job"):
        parts.append(f"job={event['job']}")
    if event.get("trace"):
        parts.append(f"trace={event['trace']}")
    if event.get("phase"):
        parts.append(f"phase={event['phase']!r}")
    if event.get("value"):
        parts.append(f"value={event['value']}")
    if event.get("detail"):
        parts.append(f"— {event['detail']}")
    return " ".join(parts)


def lines_from(stream, follow):
    """Yields complete lines; under --follow, polls for growth forever."""
    while True:
        line = stream.readline()
        if line:
            if line.endswith("\n"):
                yield line
            elif not follow:
                return  # torn final line of a crashed writer: stop cleanly
            # torn line under --follow: wait for the writer's flush
        elif follow:
            time.sleep(0.2)
        else:
            return


def main():
    args = parse_args()
    kinds = None
    if args.kind is not None:
        kinds = {k.strip() for k in args.kind.split(",") if k.strip()}
        unknown = kinds - set(KNOWN_KINDS)
        if unknown:
            sys.stderr.write(
                f"obs_tail: unknown kind(s): {', '.join(sorted(unknown))}\n")
            return 2

    stream = sys.stdin if args.path == "-" else open(
        args.path, "r", encoding="utf-8")
    origin_us = None
    shown = 0
    try:
        for line in lines_from(stream, args.follow):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                sys.stderr.write(f"obs_tail: skipping malformed line: "
                                 f"{line[:80]}\n")
                continue
            if not wanted(event, args, kinds):
                continue
            if origin_us is None:
                origin_us = event.get("ts_us", 0)
            shown += 1
            print(line if args.raw else render(event, origin_us), flush=True)
    except KeyboardInterrupt:
        pass
    finally:
        if stream is not sys.stdin:
            stream.close()
    if not args.follow:
        sys.stderr.write(f"obs_tail: {shown} event(s)\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
