#!/usr/bin/env python3
"""Diff two nullgraph --report-json run reports (or benchmark baselines).

Compares phase wall times, swap-chain acceptance rates, and metric values
between a baseline report and a candidate report, printing a row per
difference. Relative regressions beyond --threshold (default 10%) on
timing rows, or beyond --metric-threshold on acceptance/metric rows, make
the script exit non-zero so it can gate CI.

With --bench the two files are instead treated as google-benchmark JSON
(--benchmark_out_format=json): per-benchmark cpu_time is compared against
--threshold, bigger is worse. This is how check.sh diffs a fresh bench run
against the checked-in bench/baselines/ snapshots.

Usage:
  compare_reports.py baseline.json candidate.json [--threshold 0.10]
      [--metric-threshold 0.05] [--ignore-missing] [--bench]

Exit codes:
  0  no regression beyond thresholds
  1  at least one regression breached its threshold
  2  reports unreadable or structurally incompatible (version mismatch)

Only stdlib is used; schema knowledge is confined to the top of the file so
report schema growth (append-only, see src/obs/report.cpp) stays painless.
"""

from __future__ import annotations

import argparse
import json
import sys

# Keys whose growth is a regression (bigger = worse).
TIMING_SECTIONS = ("phase_seconds",)
# swap_chain scalars where a *drop* is a regression (smaller = worse).
ACCEPTANCE_KEYS = ("overall_acceptance",)


def load_report(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            report = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        sys.exit(f"error: cannot read report {path!r}: {exc}")
    if not isinstance(report, dict) or "report_version" not in report:
        sys.exit(f"error: {path!r} is not a nullgraph run report "
                 "(missing report_version)")
    return report


def load_bench(path: str) -> dict:
    """Load a google-benchmark JSON file as {benchmark name: cpu_time}.

    Aggregate rows (mean/median/stddev from --benchmark_repetitions) are
    skipped so a repetitions-enabled run still compares cleanly against a
    single-shot baseline.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        sys.exit(f"error: cannot read benchmark file {path!r}: {exc}")
    if not isinstance(doc, dict) or "benchmarks" not in doc:
        sys.exit(f"error: {path!r} is not google-benchmark JSON "
                 "(missing benchmarks)")
    out = {}
    for row in doc["benchmarks"]:
        if row.get("run_type") == "aggregate":
            continue
        name = row.get("name")
        cpu = row.get("cpu_time")
        if isinstance(name, str) and isinstance(cpu, (int, float)):
            out[name] = float(cpu)
    return out


def compare_bench(args: argparse.Namespace) -> int:
    base = load_bench(args.baseline)
    cand = load_bench(args.candidate)
    cmp = Comparison(args.threshold, args.metric_threshold,
                     args.ignore_missing)
    print(f"{'section/name':<40}  {'baseline':>14}  {'candidate':>14}  "
          f"{'delta':>8}")
    cmp.compare_numeric_map("cpu_time", base, cand, cmp.threshold,
                            bigger_is_worse=True)
    cmp.report()
    if cmp.regressions:
        print(f"\n{cmp.regressions} regression(s) beyond threshold")
        return 1
    print("\nno regressions beyond threshold")
    return 0


def rel_delta(base: float, cand: float) -> float:
    """Relative change; falls back to absolute when the base is ~zero."""
    if abs(base) < 1e-12:
        return cand - base
    return (cand - base) / abs(base)


class Comparison:
    def __init__(self, threshold: float, metric_threshold: float,
                 ignore_missing: bool) -> None:
        self.threshold = threshold
        self.metric_threshold = metric_threshold
        self.ignore_missing = ignore_missing
        self.rows: list[tuple[str, str, float, float, float, bool]] = []
        self.regressions = 0

    def note(self, section: str, name: str, base: float, cand: float,
             limit: float, bigger_is_worse: bool) -> None:
        delta = rel_delta(base, cand)
        breach = (delta > limit) if bigger_is_worse else (-delta > limit)
        if breach:
            self.regressions += 1
        self.rows.append((section, name, base, cand, delta, breach))

    def missing(self, section: str, name: str, side: str) -> None:
        if self.ignore_missing:
            return
        print(f"  [missing] {section}/{name}: only in {side} report")

    def compare_numeric_map(self, section: str, base: dict, cand: dict,
                            limit: float, bigger_is_worse: bool) -> None:
        for name in sorted(set(base) | set(cand)):
            if name not in base:
                self.missing(section, name, "candidate")
                continue
            if name not in cand:
                self.missing(section, name, "baseline")
                continue
            b, c = base[name], cand[name]
            if isinstance(b, (int, float)) and isinstance(c, (int, float)):
                self.note(section, name, float(b), float(c), limit,
                          bigger_is_worse)

    def report(self) -> None:
        if not self.rows:
            print("no comparable rows found")
            return
        width = max(len(f"{s}/{n}") for s, n, *_ in self.rows)
        for section, name, base, cand, delta, breach in self.rows:
            flag = "  REGRESSION" if breach else ""
            print(f"  {section + '/' + name:<{width}}  "
                  f"{base:>14.6g}  {cand:>14.6g}  {delta:>+8.2%}{flag}")


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Diff two nullgraph --report-json run reports")
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative wall-time regression limit "
                             "(default 0.10 = 10%%)")
    parser.add_argument("--metric-threshold", type=float, default=0.05,
                        help="relative acceptance/metric regression limit "
                             "(default 0.05)")
    parser.add_argument("--ignore-missing", action="store_true",
                        help="do not report rows present in only one report")
    parser.add_argument("--bench", action="store_true",
                        help="treat inputs as google-benchmark JSON and "
                             "compare per-benchmark cpu_time")
    args = parser.parse_args()

    if args.bench:
        return compare_bench(args)

    base = load_report(args.baseline)
    cand = load_report(args.candidate)
    if base["report_version"] != cand["report_version"]:
        print(f"error: report_version mismatch "
              f"({base['report_version']} vs {cand['report_version']}); "
              "refusing to compare", file=sys.stderr)
        return 2

    cmp = Comparison(args.threshold, args.metric_threshold,
                     args.ignore_missing)

    print(f"{'section/name':<40}  {'baseline':>14}  {'candidate':>14}  "
          f"{'delta':>8}")
    for section in TIMING_SECTIONS:
        cmp.compare_numeric_map(section, base.get(section, {}),
                                cand.get(section, {}),
                                cmp.threshold, bigger_is_worse=True)

    # Per-loop exec aggregates: wall time regressions, keyed by phase name.
    base_exec = {p["phase"]: p for p in base.get("exec_phases", [])}
    cand_exec = {p["phase"]: p for p in cand.get("exec_phases", [])}
    cmp.compare_numeric_map(
        "exec_wall_ms",
        {k: v.get("wall_ms", 0.0) for k, v in base_exec.items()},
        {k: v.get("wall_ms", 0.0) for k, v in cand_exec.items()},
        cmp.threshold, bigger_is_worse=True)

    # Swap-chain acceptance: a drop means the chain is mixing worse.
    base_swap = base.get("swap_chain") or {}
    cand_swap = cand.get("swap_chain") or {}
    if base_swap and cand_swap:
        cmp.compare_numeric_map(
            "swap_chain",
            {k: base_swap[k] for k in ACCEPTANCE_KEYS if k in base_swap},
            {k: cand_swap[k] for k in ACCEPTANCE_KEYS if k in cand_swap},
            cmp.metric_threshold, bigger_is_worse=False)

    # Counters: direction-less, so compare both ways symmetrically against
    # the metric threshold (a large move either way is suspicious).
    def counter_map(report: dict) -> dict:
        metrics = report.get("metrics") or {}
        return {c["name"]: c["value"] for c in metrics.get("counters", [])}

    for name in sorted(set(counter_map(base)) | set(counter_map(cand))):
        b = counter_map(base).get(name)
        c = counter_map(cand).get(name)
        if b is None:
            cmp.missing("counters", name, "candidate")
            continue
        if c is None:
            cmp.missing("counters", name, "baseline")
            continue
        delta = rel_delta(float(b), float(c))
        breach = abs(delta) > cmp.metric_threshold
        if breach:
            cmp.regressions += 1
        cmp.rows.append(("counters", name, float(b), float(c), delta, breach))

    cmp.report()
    if cmp.regressions:
        print(f"\n{cmp.regressions} regression(s) beyond threshold")
        return 1
    print("\nno regressions beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
