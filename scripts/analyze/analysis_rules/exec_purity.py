"""Exec-kernel purity: chunk callbacks must not block.

Callbacks handed to the exec primitives (``for_chunks``/``collect``/
``reduce``) run inside governed OpenMP loops whose scheduling and
performance model assume pure CPU work: per-chunk RNG streams, dynamic
chunk scheduling, <3% dispatch overhead (bench_backends), and the alias-
table/SIMD work planned on top (Hübschle-Schneider & Sanders,
arXiv:1905.03525) all die the moment a chunk body blocks on I/O or a
lock. The line lints confine *where* I/O lives (io-confinement); this
rule proves the *dynamic* property: nothing blocking is reachable from
any chunk callback, however many calls deep.

Exceptions are sanctioned at the call site — the offending line (or the
line above) must carry ``analyzer-ok(exec-purity): <reason>`` — or by
routing through a shim listed in SANCTIONED_SHIMS (none today; spill and
obs interactions happen per-shard/per-phase in the orchestration layer,
outside the chunk callbacks, and the rule keeps it that way).
"""

from __future__ import annotations

from . import base
from .callgraph import EXEC_PRIMITIVES as base_EXEC_PRIMITIVES

NAME = "exec-purity"
DESCRIPTION = ("chunk callbacks passed to exec primitives must not reach "
               "blocking I/O or lock acquisition")

#: Calls that block (I/O, sleeping, socket waits, lock acquisition).
BLOCKING_CALLS = {
    "fopen": "file I/O", "fclose": "file I/O", "fread": "file I/O",
    "fwrite": "file I/O", "fprintf": "file I/O", "fscanf": "file I/O",
    "fgets": "file I/O", "fputs": "file I/O", "fflush": "file I/O",
    "open": "file I/O", "read": "file I/O", "write": "file I/O",
    "close": "file I/O", "fsync": "file I/O", "fdatasync": "file I/O",
    "rename": "file I/O", "pread": "file I/O", "pwrite": "file I/O",
    "sleep": "sleeping", "usleep": "sleeping", "nanosleep": "sleeping",
    "sleep_for": "sleeping", "sleep_until": "sleeping",
    "poll": "socket wait", "select": "socket wait",
    "epoll_wait": "socket wait", "accept": "socket wait",
    "recv": "socket wait", "recvfrom": "socket wait",
    "send": "socket wait", "sendto": "socket wait",
    "connect": "socket wait",
    "lock": "lock acquisition", "pthread_mutex_lock": "lock acquisition",
    "wait": "condition wait", "wait_for": "condition wait",
    "wait_until": "condition wait",
}

#: RAII lock types: constructing one IS acquiring.
LOCK_TYPE_LASTS = frozenset({
    "MutexLock", "lock_guard", "unique_lock", "scoped_lock", "shared_lock",
})

#: Stream types: constructing one opens a file.
STREAM_TYPE_LASTS = frozenset({"ifstream", "ofstream", "fstream"})

#: Project functions a callback MAY call even though their cone contains
#: blocking operations — each entry is a deliberate, documented exception
#: (qualified-name suffix). Empty today: keep it that way if you can.
SANCTIONED_SHIMS: frozenset = frozenset()


def _is_shim(qname: str) -> bool:
    return any(qname == s or qname.endswith("::" + s)
               for s in SANCTIONED_SHIMS)


def check(ctx):
    graph = ctx.graph
    diags = []
    seen = set()

    def emit(path, line, message):
        key = (path, line, message)
        if key not in seen:
            seen.add(key)
            diags.append(base.Diagnostic(path, line, NAME, message))

    def scan(body, site, chain, visited):
        """body: LambdaBody or FunctionDef; site: the exec call site."""
        for con in sorted(body.constructs, key=lambda c: c.line):
            bad = None
            if con.last in LOCK_TYPE_LASTS:
                bad = f"lock '{con.type_name}' acquired"
            elif con.last in STREAM_TYPE_LASTS:
                bad = f"file stream '{con.type_name}' opened"
            if bad is None:
                continue
            if ctx.sanctioned(con_file(body), con.line, NAME):
                continue
            where = (f" (reached via {base.chain_str(chain)})"
                     if chain else "")
            emit(con_file(body), con.line,
                 f"{bad} inside a {site.primitive} chunk callback"
                 f"{where} — chunk bodies must not block; hoist it to the "
                 "orchestration layer or sanction the line with "
                 "'analyzer-ok(exec-purity): <why>'")
        params = frozenset(getattr(body, "params", ()) or ())
        qname = getattr(body, "qname", "")
        for call in sorted(body.calls, key=lambda c: (c.line, c.name)):
            last = call.last
            if last in BLOCKING_CALLS:
                if ctx.sanctioned(con_file(body), call.line, NAME):
                    continue
                where = (f" (reached via {base.chain_str(chain)})"
                         if chain else "")
                emit(con_file(body), call.line,
                     f"'{call.name}' ({BLOCKING_CALLS[last]}) inside a "
                     f"{site.primitive} chunk callback{where} — chunk "
                     "bodies must not block; hoist it to the orchestration "
                     "layer or sanction the line with "
                     "'analyzer-ok(exec-purity): <why>'")
                continue
            if call.name in params:
                # Invoking a callback parameter (`emit(t)` inside
                # traverse): the actual callable was analyzed where it was
                # written; resolving the parameter NAME to homonymous
                # project functions only fabricates paths.
                continue
            if last in base_EXEC_PRIMITIVES:
                # The primitives' own bookkeeping (phase-timing lock after
                # the parallel region) is the orchestration layer by
                # definition; their callback arguments are analyzed as
                # exec call sites in their own right.
                continue
            targets = graph.resolve_scoped(call.name, qname)
            if call.kind == "member" and len(targets) > 1:
                # A member call with several same-named candidates and no
                # receiver type at token level: traversing all of them
                # would make every `.record()`/`.size()` reach every
                # class's homonym. Precision over a fabricated chain.
                continue
            for target in sorted(targets, key=lambda t: (t.file, t.line)):
                if _is_shim(target.qname) or id(target) in visited:
                    continue
                visited.add(id(target))
                scan(target, site, chain + (target.name,), visited)

    def con_file(body):
        return getattr(body, "file")

    for site in sorted(graph.exec_callsites,
                       key=lambda s: (s.file, s.line)):
        for lam in site.lambdas:
            scan(lam, site, (), set())
    return diags
