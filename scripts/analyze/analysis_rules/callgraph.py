"""Cross-translation-unit call-graph model and the portable frontend.

The semantic analyzer's rules all consume one data model — functions with
qualified names, the calls/constructs inside their bodies, lambdas passed
at exec call sites — built by whichever frontend is available:

  - the libclang frontend (frontend_libclang.py) parses the real AST from
    compile_commands.json when the clang Python bindings + shared library
    are installed: exact overload resolution, template instantiation;
  - this module's *internal* frontend is a token-level C++ parser with no
    dependencies beyond checklib's lexer. It tracks namespace/class scope,
    matches braces, and extracts definitions, call edges, object
    constructions, and lambda bodies. Name resolution is conservative
    (suffix / last-component matching), which over-approximates the call
    graph — the safe direction for the reachability proofs built on it.

Both produce the same :class:`CallGraph`, so every rule runs identically
under either frontend.
"""

from __future__ import annotations

import dataclasses
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[2]))

from checklib import SourceTree, Token  # noqa: E402

#: C++ keywords and keyword-like tokens that can precede '(' without being
#: a call. static_cast & friends carry template args, so the plain
#: ident+'(' adjacency already skips them; they are listed for safety.
_NOT_CALLS = frozenset({
    "if", "for", "while", "switch", "return", "catch", "sizeof", "alignof",
    "alignas", "typeid", "decltype", "noexcept", "static_assert",
    "static_cast", "dynamic_cast", "reinterpret_cast", "const_cast",
    "throw", "new", "delete", "co_await", "co_return", "co_yield",
    "requires", "explicit", "operator", "defined", "assert",
})

#: Tokens that may legally sit between a ')' and the '{' of a function
#: body (besides the member-initializer list, handled separately).
_FN_QUALIFIERS = frozenset({
    "const", "noexcept", "override", "final", "mutable", "volatile",
    "throw", "&", "&&", "try",
})

#: Tokens after which a '[' starts a lambda rather than a subscript.
_LAMBDA_PREDECESSORS = frozenset({
    "(", ",", "{", "=", ";", "return", "<", ">", "&&", "||", "!", "?", ":",
    "+", "-", "*", "/", "%", "==", "!=", "<=", ">=", "&", "|", "^", "}",
})

#: Exec-layer parallel primitives whose trailing callable arguments are
#: chunk callbacks subject to the purity and RNG-determinism contracts.
EXEC_PRIMITIVES = ("for_chunks", "collect", "reduce")


@dataclasses.dataclass(frozen=True)
class CallRef:
    """One call expression: the name as written, where, and the identifier
    tokens appearing (at any depth) inside its argument list."""

    name: str
    line: int
    kind: str  # "call" | "member"
    arg_idents: tuple = ()

    @property
    def last(self) -> str:
        return self.name.rsplit("::", 1)[-1]


@dataclasses.dataclass(frozen=True)
class ConstructRef:
    """An object construction / allocation-like construct: `Type name(...)`,
    `Type{...}`, `new ...`, `throw ...`, or a `static` local of class type."""

    type_name: str  # "new" / "throw" are pseudo-types
    line: int
    arg_idents: tuple = ()
    is_static: bool = False

    @property
    def last(self) -> str:
        return self.type_name.rsplit("::", 1)[-1]


@dataclasses.dataclass
class LambdaBody:
    """A lambda literal: its location, first parameter name (the chunk
    handle for exec callbacks), and the calls/constructs inside it —
    nested lambdas flattened in, since the contracts are transitive."""

    file: str
    line: int
    first_param: str = ""
    params: tuple = ()
    calls: list = dataclasses.field(default_factory=list)
    constructs: list = dataclasses.field(default_factory=list)
    lambdas: list = dataclasses.field(default_factory=list)
    token_start: int = 0


@dataclasses.dataclass
class FunctionDef:
    """One function definition (free function, method, or constructor)."""

    qname: str
    file: str
    line: int
    params: tuple = ()
    calls: list = dataclasses.field(default_factory=list)
    constructs: list = dataclasses.field(default_factory=list)
    lambdas: list = dataclasses.field(default_factory=list)

    @property
    def name(self) -> str:
        return self.qname.rsplit("::", 1)[-1]


@dataclasses.dataclass
class ExecCallSite:
    """One call to an exec primitive, with the lambda(s) passed to it."""

    file: str
    line: int
    primitive: str
    lambdas: list = dataclasses.field(default_factory=list)


class CallGraph:
    """Functions indexed for conservative name resolution, plus the exec
    call sites the kernel-facing rules analyze."""

    def __init__(self):
        self.functions: list[FunctionDef] = []
        self.by_qname: dict[str, list[FunctionDef]] = {}
        self.by_last: dict[str, list[FunctionDef]] = {}
        self.exec_callsites: list[ExecCallSite] = []
        self.frontend = "internal"

    def add(self, fn: FunctionDef) -> None:
        self.functions.append(fn)
        self.by_qname.setdefault(fn.qname, []).append(fn)
        self.by_last.setdefault(fn.name, []).append(fn)

    def resolve(self, name: str) -> list[FunctionDef]:
        """Project definitions a call by `name` may reach. Qualified names
        match by suffix; bare/member names by last component. std:: and
        other foreign qualifications resolve to nothing (external)."""
        norm = name[2:] if name.startswith("::") else name
        if norm.startswith("std::"):
            return []
        if "::" in norm:
            exact = self.by_qname.get(norm)
            if exact:
                return exact
            suffix = "::" + norm
            return [fn for fns in self.by_qname.values() for fn in fns
                    if fns[0].qname.endswith(suffix)]
        return self.by_last.get(norm, [])

    def resolve_scoped(self, name: str, caller_qname: str):
        """Like :meth:`resolve`, but a *bare* name called from inside a
        class scope resolves to that class's own member when one exists —
        ``next()`` inside ``Xoshiro256ss::uniform_open`` means
        ``Xoshiro256ss::next``, not every project function named next."""
        if "::" not in name and "::" in caller_qname:
            scope = caller_qname.rsplit("::", 1)[0]
            own = self.by_qname.get(scope + "::" + name)
            if own:
                return own
        return self.resolve(name)


def _skip_matched(tokens, i, open_tok, close_tok):
    """Index just past the bracket run opened at tokens[i]."""
    depth = 0
    n = len(tokens)
    while i < n:
        v = tokens[i].value
        if tokens[i].kind == "punct":
            if v == open_tok:
                depth += 1
            elif v == close_tok:
                depth -= 1
                if depth == 0:
                    return i + 1
        i += 1
    return n


def _skip_template_args(tokens, i):
    """From tokens[i] == '<', index just past the matching '>'. Returns
    None when the run doesn't look like template arguments (comparison)."""
    depth = 0
    n = len(tokens)
    j = i
    while j < n and j - i < 64:
        t = tokens[j]
        if t.kind == "punct":
            if t.value == "<":
                depth += 1
            elif t.value == ">":
                depth -= 1
                if depth == 0:
                    return j + 1
            elif t.value == ">>":
                depth -= 2
                if depth <= 0:
                    return j + 1
            elif t.value in (";", "{", "}", "&&", "||"):
                return None
        j += 1
    return None


def _idents_in(tokens, start, end):
    return tuple(t.value for t in tokens[start:end] if t.kind == "ident")


def _param_names(tokens, start, end):
    """Declared names of a parameter list, one per comma-separated group:
    the last identifier of each group — `(const exec::Chunk& chunk,
    EdgeList& mine)` -> ('chunk', 'mine'). Unnamed parameters yield their
    type's last component, which is harmless for the callers (the names
    are used to recognize callback-parameter invocations)."""
    names = []
    last = ""
    depth = 0
    for t in tokens[start:end]:
        if t.kind == "punct":
            if t.value in ("(", "[", "{", "<"):
                depth += 1
            elif t.value in (")", "]", "}", ">"):
                depth -= 1
            elif t.value == "," and depth == 0:
                if last:
                    names.append(last.rsplit("::", 1)[-1])
                last = ""
        elif t.kind == "ident" and depth == 0:
            last = t.value
    if last:
        names.append(last.rsplit("::", 1)[-1])
    return tuple(names)


def _first_param_name(tokens, start, end):
    """Declared name of the first parameter —
    `(const exec::Chunk& chunk, EdgeList& mine)` -> 'chunk'."""
    names = _param_names(tokens, start, end)
    return names[0] if names else ""


class _Parser:
    """Token-level parser for one file: scope tracking + body extraction."""

    def __init__(self, source_file, graph: CallGraph):
        self.f = source_file
        self.tokens = source_file.tokens()
        self.graph = graph

    # ---- scope level ----------------------------------------------------

    def parse(self):
        self._scope(0, len(self.tokens), ())

    def _scope(self, i, end, scope):
        tokens = self.tokens
        while i < end:
            t = tokens[i]
            if t.kind == "pp":
                i += 1
                continue
            v = t.value
            if t.kind == "ident":
                if v == "namespace":
                    i = self._namespace(i, end, scope)
                    continue
                if v in ("class", "struct"):
                    i = self._class(i, end, scope)
                    continue
                if v == "enum":
                    i = self._skip_braced_decl(i, end)
                    continue
                if v == "template":
                    i += 1
                    if i < end and tokens[i].value == "<":
                        skipped = _skip_template_args(tokens, i)
                        i = skipped if skipped is not None else i + 1
                    continue
                if v == "using" or v == "typedef" or v == "friend":
                    while i < end and tokens[i].value != ";":
                        i += 1
                    continue
                if v == "operator":
                    i = self._operator_def(i, end, scope)
                    continue
                # Candidate function definition: IDENT [<targs>] ( ... )
                nxt = i + 1
                if nxt < end and tokens[nxt].value == "<":
                    past = _skip_template_args(tokens, nxt)
                    if past is not None and past < end and \
                            tokens[past].value == "(":
                        nxt = past
                if nxt < end and tokens[nxt].value == "(":
                    consumed = self._try_function(i, nxt, end, scope)
                    if consumed is not None:
                        i = consumed
                        continue
                    i = _skip_matched(tokens, nxt, "(", ")")
                    continue
                i += 1
                continue
            if v == "{":
                # Brace not owned by a recognized construct (array init,
                # extern "C" block - treat as transparent scope).
                i = self._scope(i + 1, end, scope)
                continue
            if v == "}":
                return i + 1
            i += 1
        return end

    def _namespace(self, i, end, scope):
        tokens = self.tokens
        j = i + 1
        names = []
        while j < end and tokens[j].value not in ("{", ";", "="):
            if tokens[j].kind == "ident":
                names.extend(tokens[j].value.split("::"))
            j += 1
        if j >= end or tokens[j].value != "{":
            return j + 1  # namespace alias / ;
        return self._scope(j + 1, end, scope + tuple(names))

    def _class(self, i, end, scope):
        tokens = self.tokens
        j = i + 1
        name = None
        while j < end and tokens[j].value not in ("{", ";"):
            if tokens[j].kind == "ident" and name is None and \
                    tokens[j].value not in ("final", "alignas"):
                name = tokens[j].value
            j += 1
        if j >= end or tokens[j].value != "{":
            return j + 1  # forward declaration
        inner_scope = scope + ((name,) if name else ())
        return self._scope(j + 1, end, inner_scope)

    def _skip_braced_decl(self, i, end):
        tokens = self.tokens
        j = i
        while j < end and tokens[j].value not in ("{", ";"):
            j += 1
        if j < end and tokens[j].value == "{":
            j = _skip_matched(tokens, j, "{", "}")
        return j

    def _operator_def(self, i, end, scope):
        # `operator<op>(params)...{` — consume the operator token run up to
        # the parameter list, then share the function machinery.
        tokens = self.tokens
        j = i + 1
        # operator() and operator[] carry their brackets before the params.
        if j < end and tokens[j].value == "(" and j + 1 < end and \
                tokens[j + 1].value == ")":
            j += 2
        else:
            while j < end and tokens[j].kind == "punct" and \
                    tokens[j].value != "(":
                j += 1
        if j >= end or tokens[j].value != "(":
            return j
        consumed = self._try_function(i, j, end, scope, name="operator")
        if consumed is not None:
            return consumed
        return _skip_matched(tokens, j, "(", ")")

    def _try_function(self, name_i, paren_i, end, scope, name=None):
        """Parse a function definition whose name token is at name_i and
        parameter '(' at paren_i. Returns the index past the body, or None
        when this is not a definition (declaration, macro use, ...)."""
        tokens = self.tokens
        fn_name = name if name is not None else tokens[name_i].value
        after_params = _skip_matched(tokens, paren_i, "(", ")")
        j = after_params
        seen_init_list = False
        while j < end:
            t = tokens[j]
            v = t.value
            if v == ";" or v == ",":
                return None  # declaration / declarator list
            if v == "=":
                # = default / = delete / an initializer -> not a body.
                return None
            if v == "{":
                body_fn = FunctionDef(
                    qname="::".join(scope + tuple(fn_name.split("::"))),
                    file=self.f.path, line=tokens[name_i].line,
                    params=_param_names(tokens, paren_i + 1,
                                        after_params - 1))
                end_i = self._body(j + 1, end, body_fn)
                self.graph.add(body_fn)
                self._attach_exec_lambdas(body_fn)
                return end_i
            if v == ":" and not seen_init_list:
                j = self._member_init_list(j + 1, end)
                seen_init_list = True
                continue
            if v == "->":
                # Trailing return type: skip to the body brace or ';'.
                j += 1
                while j < end and tokens[j].value not in ("{", ";"):
                    if tokens[j].value == "(":
                        j = _skip_matched(tokens, j, "(", ")")
                    elif tokens[j].value == "<":
                        past = _skip_template_args(tokens, j)
                        j = past if past is not None else j + 1
                    else:
                        j += 1
                continue
            if t.kind == "ident" and v in _FN_QUALIFIERS or \
                    t.kind == "punct" and v in _FN_QUALIFIERS:
                if v == "noexcept" or v == "throw":
                    j += 1
                    if j < end and tokens[j].value == "(":
                        j = _skip_matched(tokens, j, "(", ")")
                    continue
                j += 1
                continue
            if t.kind == "ident" and v.isupper() is False and \
                    v in ("requires",):
                return None
            # Attribute macros like NG_ACQUIRE(mutex) between ')' and '{'.
            if t.kind == "ident":
                j += 1
                if j < end and tokens[j].value == "(":
                    j = _skip_matched(tokens, j, "(", ")")
                continue
            return None
        return None

    def _member_init_list(self, i, end):
        """Skip `member(expr), member{expr}, ...` up to the body '{'."""
        tokens = self.tokens
        j = i
        while j < end:
            v = tokens[j].value
            if v == "(":
                j = _skip_matched(tokens, j, "(", ")")
            elif v == "{":
                # Brace-init of a member, ONLY when directly preceded by an
                # identifier (`a_{1}`); otherwise it is the body.
                if j > i and tokens[j - 1].kind == "ident" and \
                        tokens[j - 1].value not in _FN_QUALIFIERS:
                    j = _skip_matched(tokens, j, "{", "}")
                else:
                    return j
            elif v == ",":
                j += 1
            elif tokens[j].kind == "ident" or v in ("::", "...", "<", ">"):
                j += 1
            else:
                return j
        return j

    # ---- body level -----------------------------------------------------

    def _body(self, i, end, sink):
        """Walk a function/lambda body from just after its '{'; record
        calls, constructs and lambdas into `sink`; return index past '}'."""
        tokens = self.tokens
        depth = 1
        while i < end:
            t = tokens[i]
            v = t.value
            if t.kind == "punct":
                if v == "{":
                    depth += 1
                elif v == "}":
                    depth -= 1
                    if depth == 0:
                        return i + 1
                elif v == "[" and self._starts_lambda(i):
                    i = self._lambda(i, end, sink)
                    continue
                i += 1
                continue
            if t.kind == "pp":
                i += 1
                continue
            # ident / number
            if t.kind == "ident":
                if v == "new":
                    sink.constructs.append(ConstructRef("new", t.line))
                    i += 1
                    continue
                if v == "throw":
                    sink.constructs.append(ConstructRef("throw", t.line))
                    i += 1
                    continue
                if v == "static":
                    i = self._static_decl(i, end, sink)
                    continue
                nxt = i + 1
                # Copy-init declaration `Type name = expr;`: a
                # construction of Type. The initializer tokens are NOT
                # consumed, so calls inside it are still recorded.
                if nxt + 1 < end and tokens[nxt].kind == "ident" and \
                        "::" not in tokens[nxt].value and \
                        tokens[nxt + 1].value == "=" and \
                        v not in _NOT_CALLS and \
                        v not in ("return", "else", "auto", "case",
                                  "using", "typedef", "goto"):
                    j = nxt + 2
                    stop = min(end, j + 50)
                    while j < stop and tokens[j].value not in (";", "{"):
                        j += 1
                    sink.constructs.append(ConstructRef(
                        v, t.line, _idents_in(tokens, nxt + 2, j)))
                    i += 1
                    continue
                # Template args between a name and its '(': call or
                # construct with explicit arguments.
                call_paren = None
                if nxt < end and tokens[nxt].value == "<":
                    past = _skip_template_args(tokens, nxt)
                    if past is not None and past < end and \
                            tokens[past].value in ("(", "{"):
                        call_paren = past
                elif nxt < end and tokens[nxt].value in ("(", "{"):
                    call_paren = nxt
                if call_paren is None or v in _NOT_CALLS:
                    i += 1
                    continue
                open_tok = tokens[call_paren].value
                close_tok = ")" if open_tok == "(" else "}"
                args_end = _skip_matched(tokens, call_paren, open_tok,
                                         close_tok)
                arg_idents = _idents_in(tokens, call_paren + 1, args_end - 1)
                prev = tokens[i - 1] if i > 0 else None
                if prev is not None and prev.kind == "punct" and \
                        prev.value in (".", "->"):
                    sink.calls.append(CallRef(v, t.line, "member",
                                              arg_idents))
                elif prev is not None and self._is_type_position(i):
                    # `Type name(args)` / `Type name{args}` declaration:
                    # a construction of Type, not a call of `name`.
                    type_name = self._type_before(i)
                    sink.constructs.append(
                        ConstructRef(type_name, t.line, arg_idents))
                elif open_tok == "(":
                    sink.calls.append(CallRef(v, t.line, "call", arg_idents))
                else:
                    # `Type{...}` braced temporary.
                    sink.constructs.append(
                        ConstructRef(v, t.line, arg_idents))
                # Continue INSIDE the argument list so nested calls and
                # lambdas are recorded too.
                i += 1
                continue
            i += 1
        return end

    def _starts_lambda(self, i):
        if i == 0:
            return True
        prev = self.tokens[i - 1]
        if prev.kind == "punct":
            return prev.value in _LAMBDA_PREDECESSORS
        return prev.kind == "ident" and prev.value in ("return", "case")

    def _lambda(self, i, end, sink):
        """Parse a lambda literal starting at '['; flatten its contents
        into `sink` AND record it as a LambdaBody on the sink."""
        tokens = self.tokens
        after_capture = _skip_matched(tokens, i, "[", "]")
        j = after_capture
        params = ()
        if j < end and tokens[j].value == "<":  # template lambda
            past = _skip_template_args(tokens, j)
            j = past if past is not None else j
        if j < end and tokens[j].value == "(":
            params_end = _skip_matched(tokens, j, "(", ")")
            params = _param_names(tokens, j + 1, params_end - 1)
            j = params_end
        while j < end and tokens[j].value not in ("{", ";", ")"):
            if tokens[j].value == "(":
                j = _skip_matched(tokens, j, "(", ")")
            else:
                j += 1
        if j >= end or tokens[j].value != "{":
            return after_capture  # not a lambda after all (array literal?)
        lam = LambdaBody(file=self.f.path, line=tokens[i].line,
                         first_param=params[0] if params else "",
                         params=params, token_start=i)
        end_i = self._body(j + 1, end, lam)
        sink.lambdas.append(lam)
        # Flatten: the enclosing body "reaches" everything the lambda does,
        # so reachability walks never have to recurse into lambda nests.
        sink.calls.extend(lam.calls)
        sink.constructs.extend(lam.constructs)
        return end_i

    def _static_decl(self, i, end, sink):
        """`static Type name...` — record the declared type so the
        signal-safety rule can reason about guard-acquiring initializers."""
        tokens = self.tokens
        j = i + 1
        while j < end and tokens[j].kind == "ident" and \
                tokens[j].value in ("const", "constexpr", "thread_local",
                                    "inline", "unsigned", "signed"):
            j += 1
        if j < end and tokens[j].kind == "ident":
            type_name = tokens[j].value
            sink.constructs.append(
                ConstructRef(type_name, tokens[i].line, is_static=True))
        return i + 1

    def _is_type_position(self, i):
        """tokens[i] is a declared name when the previous token run is a
        type: `Xoshiro256ss rng(` or `std::vector<Edge> out(`."""
        prev = self.tokens[i - 1]
        if prev.kind == "ident":
            return prev.value not in _NOT_CALLS and \
                prev.value not in ("return", "else", "do", "case", "goto",
                                   "co_return", "and", "or", "not")
        if prev.kind == "punct" and prev.value in (">", "&", "*"):
            # `std::vector<Edge> out(`, `Type& ref(`, `Type* p(` — only a
            # type position when an identifier heads the run; good enough
            # for the construct detection the rules rely on.
            return self._type_before(i) != ""
        return False

    def _type_before(self, i):
        """The type name ending just before the declared name at i."""
        tokens = self.tokens
        j = i - 1
        while j >= 0 and tokens[j].kind == "punct" and \
                tokens[j].value in ("&", "*", "&&"):
            j -= 1
        if j >= 0 and tokens[j].kind == "punct" and tokens[j].value == ">":
            depth = 0
            while j >= 0:
                v = tokens[j].value
                if tokens[j].kind == "punct":
                    if v in (">", ">>"):
                        depth += 2 if v == ">>" else 1
                    elif v == "<":
                        depth -= 1
                        if depth == 0:
                            j -= 1
                            break
                j -= 1
        if j >= 0 and tokens[j].kind == "ident":
            return tokens[j].value
        return ""

    # ---- exec call sites ------------------------------------------------

    def _attach_exec_lambdas(self, fn: FunctionDef):
        """Pair each exec-primitive call in `fn` with the lambdas defined
        inside its argument span, producing ExecCallSite records."""
        for call in fn.calls:
            last = call.last
            if last not in EXEC_PRIMITIVES:
                continue
            if not (call.name.startswith(("exec::", "::exec::",
                                          "nullgraph::exec::"))
                    or last == call.name):
                continue
            site = ExecCallSite(file=fn.file, line=call.line, primitive=last)
            for lam in fn.lambdas:
                # A lambda belongs to the nearest preceding primitive call
                # on/after the call line; spans are approximated by lines,
                # which is exact for the project style (one exec call per
                # statement).
                if lam.line >= call.line and self._owned_by(call, lam, fn):
                    site.lambdas.append(lam)
            if site.lambdas:
                self.graph.exec_callsites.append(site)

    def _owned_by(self, call, lam, fn):
        """The lambda's nearest preceding exec call is `call`."""
        best = None
        for other in fn.calls:
            if other.last in EXEC_PRIMITIVES and other.line <= lam.line:
                if best is None or other.line > best.line:
                    best = other
        return best is call


def build_call_graph(tree: SourceTree) -> CallGraph:
    """Internal-frontend entry point: parse every file in the tree."""
    graph = CallGraph()
    for f in tree.files:
        _Parser(f, graph).parse()
    return graph
