"""libclang frontend: the precise call-graph builder, used when available.

Parses real ASTs via the clang Python bindings (``clang.cindex``) and a
``compile_commands.json``, producing the same :class:`callgraph.CallGraph`
the internal frontend builds — exact overload resolution and template
instantiation instead of token heuristics. Every import/load failure
raises :class:`FrontendUnavailable`; the driver catches it, prints a
notice, and falls back to the internal frontend, so this module is never
a hard dependency.
"""

from __future__ import annotations

import pathlib

from .callgraph import (CallGraph, CallRef, ConstructRef, EXEC_PRIMITIVES,
                        ExecCallSite, FunctionDef, LambdaBody)


class FrontendUnavailable(RuntimeError):
    """libclang (bindings or shared library) is not usable on this host."""


def _load_cindex():
    try:
        from clang import cindex  # noqa: PLC0415
    except ImportError as exc:
        raise FrontendUnavailable(
            f"clang Python bindings not importable ({exc})") from exc
    try:
        cindex.Index.create()
    except Exception as exc:  # cindex raises LibclangError and worse
        raise FrontendUnavailable(
            f"libclang shared library not loadable ({exc})") from exc
    return cindex


def _qname(cursor) -> str:
    parts = []
    cur = cursor
    while cur is not None and cur.spelling:
        kind = cur.kind.name
        if kind == "TRANSLATION_UNIT":
            break
        parts.append(cur.spelling)
        cur = cur.semantic_parent
    return "::".join(reversed(parts))


def _rel_path(cursor, root: pathlib.Path):
    loc = cursor.location
    if loc.file is None:
        return None
    try:
        return pathlib.Path(loc.file.name).resolve() \
            .relative_to(root.resolve()).as_posix()
    except ValueError:
        return None


def _arg_idents(cindex, node):
    idents = []
    for child in node.walk_preorder():
        if child.kind in (cindex.CursorKind.DECL_REF_EXPR,
                          cindex.CursorKind.MEMBER_REF_EXPR):
            if child.spelling:
                idents.append(child.spelling)
    return tuple(idents)


def _harvest(cindex, node, sink, root, tree_files):
    """Record calls/constructs/lambdas under `node` into `sink`."""
    for child in node.get_children():
        kind = child.kind
        if kind == cindex.CursorKind.LAMBDA_EXPR:
            path = _rel_path(child, root)
            lam = LambdaBody(file=path or sink.file,
                             line=child.location.line)
            params = [c.spelling for c in child.get_children()
                      if c.kind == cindex.CursorKind.PARM_DECL]
            if params:
                lam.first_param = params[0]
            body = next((c for c in child.get_children()
                         if c.kind == cindex.CursorKind.COMPOUND_STMT), None)
            if body is not None:
                _harvest(cindex, body, lam, root, tree_files)
            sink.lambdas.append(lam)
            # Flatten, mirroring the internal frontend's contract.
            sink.calls.extend(lam.calls)
            sink.constructs.extend(lam.constructs)
            continue
        if kind == cindex.CursorKind.CALL_EXPR and child.spelling:
            ref = child.referenced
            name = _qname(ref) if ref is not None else child.spelling
            args = tuple(a for arg in child.get_arguments()
                         for a in _arg_idents(cindex, arg))
            sink.calls.append(CallRef(name or child.spelling,
                                      child.location.line, "call", args))
        elif kind == cindex.CursorKind.CXX_NEW_EXPR:
            sink.constructs.append(ConstructRef("new", child.location.line))
        elif kind == cindex.CursorKind.CXX_THROW_EXPR:
            sink.constructs.append(ConstructRef("throw",
                                                child.location.line))
        elif kind == cindex.CursorKind.VAR_DECL:
            type_name = child.type.spelling.split("<")[0].strip()
            is_static = child.storage_class == cindex.StorageClass.STATIC
            if type_name:
                sink.constructs.append(
                    ConstructRef(type_name, child.location.line,
                                 _arg_idents(cindex, child), is_static))
        _harvest(cindex, child, sink, root, tree_files)


_FN_KINDS = ("FUNCTION_DECL", "CXX_METHOD", "CONSTRUCTOR", "DESTRUCTOR",
             "FUNCTION_TEMPLATE")


def build_call_graph(tree, compile_commands=None) -> CallGraph:
    """Parse every TU named in compile_commands.json that lies inside the
    scanned tree; raise FrontendUnavailable when libclang cannot run."""
    cindex = _load_cindex()
    root = tree.root
    cc_path = pathlib.Path(compile_commands) if compile_commands else \
        root / "compile_commands.json"
    if cc_path.is_dir():
        cc_path = cc_path / "compile_commands.json"
    if not cc_path.is_file():
        raise FrontendUnavailable(
            f"no compile_commands.json at {cc_path} (configure with "
            "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON)")
    try:
        db = cindex.CompilationDatabase.fromDirectory(str(cc_path.parent))
    except Exception as exc:
        raise FrontendUnavailable(
            f"compilation database unreadable ({exc})") from exc

    graph = CallGraph()
    graph.frontend = "libclang"
    index = cindex.Index.create()
    tree_paths = {f.path for f in tree.files}
    seen_files = set()
    for cmd in db.getAllCompileCommands():
        src = pathlib.Path(cmd.filename)
        if not src.is_absolute():
            src = pathlib.Path(cmd.directory) / src
        try:
            rel = src.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            continue
        if rel not in tree_paths or rel in seen_files:
            continue
        seen_files.add(rel)
        args = [a for a in list(cmd.arguments)[1:]
                if a not in (str(cmd.filename), "-c", "-o")]
        # Drop the object-file operand that follows -o (filtered above).
        args = [a for a in args if not a.endswith((".o", ".obj"))]
        try:
            tu = index.parse(str(src), args=args)
        except Exception:
            continue
        for cursor in tu.cursor.walk_preorder():
            if cursor.kind.name not in _FN_KINDS:
                continue
            if not cursor.is_definition():
                continue
            path = _rel_path(cursor, root)
            if path is None or path not in tree_paths:
                continue
            fn = FunctionDef(qname=_qname(cursor), file=path,
                             line=cursor.location.line)
            body = next((c for c in cursor.get_children()
                         if c.kind == cindex.CursorKind.COMPOUND_STMT),
                        None)
            if body is not None:
                _harvest(cindex, body, fn, root, tree_paths)
            graph.add(fn)
            for call in fn.calls:
                if call.last in EXEC_PRIMITIVES and fn.lambdas:
                    site = ExecCallSite(file=fn.file, line=call.line,
                                        primitive=call.last)
                    site.lambdas = [lam for lam in fn.lambdas
                                    if lam.line >= call.line]
                    if site.lambdas:
                        graph.exec_callsites.append(site)
    if not graph.functions:
        raise FrontendUnavailable(
            "libclang parsed no project functions (broken toolchain?)")
    return graph
