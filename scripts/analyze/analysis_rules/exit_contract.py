"""Exit-code contract: enum, CLI mapping, and README table agree exactly.

The StatusCode taxonomy is a documented external contract: every failure
mode maps to exactly one stable process exit status, and operators script
against the README table. Three artifacts encode it independently —

  - the ``StatusCode`` enum (src/robustness/status.hpp),
  - the ``status_exit_code`` / ``status_code_name`` switches
    (src/robustness/status.cpp),
  - the README "Exit | Status | Meaning" table —

and nothing used to force them to agree; a new code added to the enum but
not the README (or a renumbered row) shipped silently. This rule
cross-checks all three: switch totality, exit-number uniqueness,
name-string fidelity, and byte-level README row agreement. It also flags
hardcoded ``exit(N)`` / ``_exit(N)`` literals with N > 1 in the CLI:
those bypass ``status_exit_code`` and invent undocumented exit statuses.

Each artifact is checked only when present, so reduced fixture trees (and
libraries embedding the analyzer) stay usable.
"""

from __future__ import annotations

import re

from . import base

NAME = "exit-contract"
DESCRIPTION = ("StatusCode enum, status_exit_code/status_code_name switches, "
               "and the README exit-code table must agree exactly")

_ENUM_RE = re.compile(
    r"enum\s+class\s*(?:\[\[[^\]]*\]\]\s*)?StatusCode\s*(?::\s*\w+\s*)?\{"
    r"(?P<body>[^}]*)\}", re.DOTALL)
_ENUMERATOR_RE = re.compile(r"\b(k\w+)\b(?:\s*=\s*(\d+))?")
_EXIT_CASE_RE = re.compile(
    r"case\s+StatusCode::(k\w+)\s*:\s*return\s+(\d+)\s*;")
_NAME_CASE_RE = re.compile(
    r'case\s+StatusCode::(k\w+)\s*:\s*return\s+"(k?\w*)"\s*;')
_README_ROW_RE = re.compile(r"^\|\s*(\d+)\s*\|\s*`?(k\w+)`?\s*\|")
_EXIT_LITERAL_RE = re.compile(r"\b(_?exit)\s*\(\s*(\d+)\s*\)")


def _find_file(ctx, suffix):
    for f in ctx.tree.files:
        if f.path.endswith(suffix):
            return f
    return None


def _line_of(f, needle, fallback=1):
    for i, raw in enumerate(f.raw_lines, 1):
        if needle in raw:
            return i
    return fallback


def _parse_enum(f):
    """Ordered {name: value} from the StatusCode enum, or None."""
    m = _ENUM_RE.search(f.stripped_text)
    if m is None:
        return None
    values = {}
    nxt = 0
    for em in _ENUMERATOR_RE.finditer(m.group("body")):
        name, explicit = em.groups()
        nxt = int(explicit) if explicit is not None else nxt
        values[name] = nxt
        nxt += 1
    return values


def check(ctx):
    diags = []

    def emit(path, line, message):
        diags.append(base.Diagnostic(path, line, NAME, message))

    hpp = _find_file(ctx, "robustness/status.hpp")
    cpp = _find_file(ctx, "robustness/status.cpp")
    enum = _parse_enum(hpp) if hpp is not None else None

    exit_map = {}
    if cpp is not None:
        # Strings are blanked in stripped text, so the name switch is
        # parsed from raw lines; the exit switch from stripped lines.
        for i, line in enumerate(cpp.code_lines, 1):
            for m in _EXIT_CASE_RE.finditer(line):
                exit_map[m.group(1)] = (int(m.group(2)), i)
        name_map = {}
        for i, line in enumerate(cpp.raw_lines, 1):
            for m in _NAME_CASE_RE.finditer(line):
                name_map[m.group(1)] = (m.group(2), i)

        if enum is not None:
            for name in enum:
                if name not in exit_map:
                    emit(cpp.path, _line_of(cpp, "status_exit_code"),
                         f"status_exit_code has no case for "
                         f"StatusCode::{name} — it falls to the default "
                         "return and aliases kInternal's exit status")
                if name_map and name not in name_map:
                    emit(cpp.path, _line_of(cpp, "status_code_name"),
                         f"status_code_name has no case for "
                         f"StatusCode::{name}")
            for name, (_, line) in sorted(exit_map.items(),
                                          key=lambda kv: kv[1][1]):
                if name not in enum:
                    emit(cpp.path, line,
                         f"status_exit_code names StatusCode::{name}, which "
                         "is not in the enum")
        by_exit = {}
        for name, (code, line) in sorted(exit_map.items(),
                                         key=lambda kv: kv[1][1]):
            if code in by_exit:
                emit(cpp.path, line,
                     f"exit status {code} is mapped by both "
                     f"{by_exit[code]} and {name} — exit numbers must be "
                     "unique per status code")
            else:
                by_exit[code] = name
        for name, (string, line) in sorted(name_map.items(),
                                           key=lambda kv: kv[1][1]):
            if string != name:
                emit(cpp.path, line,
                     f"status_code_name returns \"{string}\" for "
                     f"StatusCode::{name} — the string must equal the "
                     "enumerator name")

    readme = ctx.read_root_file("README.md")
    if readme is not None and exit_map:
        rows = {}
        for i, line in enumerate(readme.splitlines(), 1):
            m = _README_ROW_RE.match(line.strip())
            if m:
                rows[m.group(2)] = (int(m.group(1)), i)
        if rows:
            table_line = min(line for _, line in rows.values())
            for name, (code, _) in sorted(exit_map.items(),
                                          key=lambda kv: kv[1][0]):
                if name not in rows:
                    emit("README.md", table_line,
                         f"exit-code table has no row for {name} "
                         f"(exit {code}) — every StatusCode is documented")
                elif rows[name][0] != code:
                    emit("README.md", rows[name][1],
                         f"exit-code table says {name} = exit "
                         f"{rows[name][0]}, but status_exit_code returns "
                         f"{code} — the table drifted from the code")
            for name, (code, line) in sorted(rows.items(),
                                             key=lambda kv: kv[1][1]):
                if name not in exit_map:
                    emit("README.md", line,
                         f"exit-code table documents {name} (exit {code}), "
                         "which status_exit_code does not map")

    for f in ctx.tree.files:
        if not f.in_dir("tools/"):
            continue
        for i, line in enumerate(f.code_lines, 1):
            for m in _EXIT_LITERAL_RE.finditer(line):
                n = int(m.group(2))
                if n <= 1:
                    continue  # 0/1 are the blessed ok/usage statuses
                if ctx.sanctioned(f.path, i, NAME):
                    continue
                emit(f.path, i,
                     f"hardcoded {m.group(1)}({n}) bypasses "
                     "status_exit_code and invents an undocumented exit "
                     "status — map a StatusCode instead (or sanction with "
                     "'analyzer-ok(exit-contract): <why>')")
    return diags
