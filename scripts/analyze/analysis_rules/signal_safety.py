"""Signal-safety proof: from every fatal-signal-handler root and the
flight-recorder dump path, only async-signal-safe operations are reachable.

The regex lints cannot see that ``on_fatal_signal`` calls
``FlightRecorder::dump`` which calls ``::write`` — this rule walks the
cross-TU call graph from the handler roots and proves the whole cone:

  - every reachable *external* call must be on the POSIX
    async-signal-safe allowlist (open/write/fsync/rename/_exit/...,
    the string.h functions POSIX.1-2008 added, and lock-free
    ``std::atomic`` member operations);
  - every reachable *project* call is traversed recursively;
  - allocation (``new``, ``std::string``/container construction),
    ``throw``, stdio, and mutex acquisition anywhere in the cone are
    diagnosed with the full call chain;
  - function-local ``static``s of class type are diagnosed (their lazy
    initializer acquires a C++ init guard) unless the type is
    constant-initializable (``std::atomic``) or the site carries an
    ``analyzer-ok(signal-safety): <reason>`` sanction, e.g. "constructed
    before the handler is installed".

Roots are discovered, not configured: any function passed to
``std::signal``/``sigaction`` plus any definition annotated with an
``analyzer: signal-safe-root`` marker comment (the flight-recorder dump
path carries one — its safety claim is now checked, not asserted).
"""

from __future__ import annotations

from . import base

NAME = "signal-safety"
DESCRIPTION = ("call-graph proof that signal handlers and the "
               "flight-recorder dump path reach only async-signal-safe code")

ROOT_MARKER = "analyzer: signal-safe-root"

#: POSIX.1-2008 async-signal-safe functions the project may plausibly
#: reach, plus the std:: spellings of the same, plus lock-free
#: std::atomic member operations (sanctioned engineering judgment: they
#: compile to plain loads/stores/RMWs, no locks on any supported target).
SAFE_CALLS = frozenset({
    # syscalls / unistd
    "open", "openat", "close", "read", "write", "pread", "pwrite", "fsync",
    "fdatasync", "rename", "renameat", "unlink", "unlinkat", "link",
    "mkdir", "rmdir", "lseek", "dup", "dup2", "pipe", "fcntl", "stat",
    "fstat", "lstat", "umask", "getpid", "getppid", "kill", "raise",
    "alarm", "chdir", "_exit", "_Exit", "abort", "clock_gettime",
    "sigaction", "signal", "sigemptyset", "sigfillset", "sigaddset",
    "sigdelset", "sigprocmask", "pthread_sigmask", "sysconf",
    # string.h / memory primitives (on the POSIX.1-2008 list)
    "memcpy", "memmove", "memset", "memcmp", "memchr", "strlen", "strcpy",
    "strncpy", "strcat", "strncat", "strcmp", "strncmp", "strchr",
    "strrchr", "strnlen",
    # lock-free std::atomic member operations
    "load", "store", "exchange", "fetch_add", "fetch_sub", "fetch_and",
    "fetch_or", "fetch_xor", "compare_exchange_weak",
    "compare_exchange_strong", "test_and_set", "clear",
    # value helpers that cannot allocate
    "min", "max", "size", "data", "begin", "end",
})

#: Known-unsafe by name, with the reason baked into the diagnostic.
UNSAFE_CALLS = {
    "malloc": "allocates", "calloc": "allocates", "realloc": "allocates",
    "free": "frees heap memory", "printf": "stdio buffers/locks",
    "fprintf": "stdio buffers/locks", "sprintf": "stdio formatting",
    "snprintf": "may allocate for floating-point conversion (not on the "
                "POSIX async-signal-safe list)",
    "vsnprintf": "stdio formatting", "puts": "stdio buffers/locks",
    "fputs": "stdio buffers/locks", "fwrite": "stdio buffers/locks",
    "fread": "stdio buffers/locks", "fopen": "allocates a FILE",
    "fclose": "stdio buffers/locks", "fflush": "stdio locks",
    "exit": "runs atexit handlers and flushes stdio (use _exit)",
    "syslog": "may allocate/lock", "pthread_mutex_lock": "blocks on a lock",
    "lock": "acquires a lock", "unlock": "releases a lock it may not hold",
    "push_back": "may reallocate", "emplace_back": "may reallocate",
    "insert": "may allocate", "resize": "may reallocate",
    "append": "may reallocate", "c_str": "std::string access implies "
                                         "std::string construction upstream",
}

#: Constructions that allocate: flagged anywhere in a signal cone.
ALLOC_TYPE_LASTS = frozenset({
    "string", "vector", "map", "unordered_map", "set", "unordered_set",
    "deque", "list", "ostringstream", "istringstream", "stringstream",
    "function", "shared_ptr", "unique_ptr",
})

#: Lock-RAII types: acquisition, not allocation, but equally fatal.
LOCK_TYPE_LASTS = frozenset({
    "MutexLock", "lock_guard", "unique_lock", "scoped_lock", "shared_lock",
})

#: Types whose function-local statics are constant-initialized (no init
#: guard at runtime), hence safe to touch from a handler.
SAFE_STATIC_LASTS = frozenset({"atomic", "sig_atomic_t", "atomic_flag"})


def _marker_roots(ctx):
    """Functions annotated `analyzer: signal-safe-root` within the four
    raw lines above (or on) their definition line."""
    roots = []
    for fn in ctx.graph.functions:
        f = ctx.files_by_path.get(fn.file)
        if f is None:
            continue
        lo = max(0, fn.line - 5)
        if any(ROOT_MARKER in raw for raw in f.raw_lines[lo:fn.line]):
            roots.append(fn)
    return roots


def _handler_roots(ctx):
    """Functions installed via std::signal / sigaction anywhere."""
    roots = []
    for fn in ctx.graph.functions:
        for call in fn.calls:
            if call.last not in ("signal", "sigaction"):
                continue
            for ident in call.arg_idents:
                if ident.startswith("SIG"):
                    continue
                for target in ctx.graph.resolve(ident):
                    roots.append(target)
    return roots


def check(ctx):
    graph = ctx.graph
    roots = {id(fn): fn for fn in _handler_roots(ctx) + _marker_roots(ctx)}
    diags = []
    seen = set()

    def emit(path, line, message):
        key = (path, line, message)
        if key not in seen:
            seen.add(key)
            diags.append(base.Diagnostic(path, line, NAME, message))

    def walk(fn, chain, root_name, visited):
        if id(fn) in visited:
            return
        visited.add(id(fn))
        here = chain + (fn.name,)
        via = base.chain_str(here)
        for con in sorted(fn.constructs, key=lambda c: c.line):
            if ctx.sanctioned(fn.file, con.line, NAME):
                continue
            if con.type_name == "new":
                emit(fn.file, con.line,
                     f"operator new in the signal cone of '{root_name}' "
                     f"(via {via}) — allocation is not async-signal-safe")
            elif con.type_name == "throw":
                emit(fn.file, con.line,
                     f"throw in the signal cone of '{root_name}' (via "
                     f"{via}) — unwinding from a handler is undefined")
            elif con.is_static and con.last not in SAFE_STATIC_LASTS:
                emit(fn.file, con.line,
                     f"function-local static '{con.type_name}' in the "
                     f"signal cone of '{root_name}' (via {via}) — its lazy "
                     "initializer acquires a C++ init guard; pre-construct "
                     "it before installing the handler and sanction the "
                     "line with 'analyzer-ok(signal-safety): <why>'")
            elif con.last in ALLOC_TYPE_LASTS:
                emit(fn.file, con.line,
                     f"'{con.type_name}' constructed in the signal cone of "
                     f"'{root_name}' (via {via}) — allocates")
            elif con.last in LOCK_TYPE_LASTS:
                emit(fn.file, con.line,
                     f"lock '{con.type_name}' acquired in the signal cone "
                     f"of '{root_name}' (via {via}) — a handler that "
                     "interrupts the holder deadlocks")
        for call in sorted(fn.calls, key=lambda c: (c.line, c.name)):
            if ctx.sanctioned(fn.file, call.line, NAME):
                continue
            last = call.last
            if last in UNSAFE_CALLS:
                emit(fn.file, call.line,
                     f"'{call.name}' reached from signal root "
                     f"'{root_name}' (via {via}) — {UNSAFE_CALLS[last]}")
                continue
            if last in SAFE_CALLS:
                continue
            targets = graph.resolve(call.name)
            if targets:
                for target in sorted(targets, key=lambda t: (t.file,
                                                             t.line)):
                    walk(target, here, root_name, visited)
            else:
                emit(fn.file, call.line,
                     f"cannot prove '{call.name}' async-signal-safe "
                     f"(reached from '{root_name}' via {via}) — not on the "
                     "POSIX allowlist and no project definition found; "
                     "replace it with an allowlisted primitive or sanction "
                     "the call site with 'analyzer-ok(signal-safety): "
                     "<why>'")

    for fn in sorted(roots.values(), key=lambda f: (f.file, f.line)):
        walk(fn, (), fn.name, set())
    return diags
