"""Shared infrastructure for the semantic-analysis rules.

An analysis rule is a module exposing::

    NAME: str          stable kebab-case identifier
    DESCRIPTION: str   one-liner for --list
    check(ctx) -> list[Diagnostic]

where ``ctx`` is an :class:`AnalysisContext`: the scanned source tree, the
cross-TU call graph (from whichever frontend was available), and the repo
root for rules that read non-C++ contract files (README.md).

Sanctions. A rule exception is justified *at the site*: the raw line (or
the line above) must carry ``analyzer-ok(<rule>): <reason>`` with a
non-empty reason. Bare sanctions are themselves diagnosed, mirroring the
atomics lint's 'relaxed:' discipline.
"""

from __future__ import annotations

import dataclasses
import pathlib
import re
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[2]))

from checklib import (Diagnostic, SourceFile, SourceTree,  # noqa: E402,F401
                      diagnostics_to_json, strip_comments_and_strings,
                      tokenize)

_SANCTION = re.compile(r"analyzer-ok\((?P<rule>[a-z-]+)\):\s*(?P<reason>\S.*)?")


@dataclasses.dataclass
class AnalysisContext:
    root: pathlib.Path
    tree: SourceTree
    graph: object  # callgraph.CallGraph (internal or libclang frontend)

    def __post_init__(self):
        self.files_by_path = {f.path: f for f in self.tree.files}

    def sanctioned(self, path: str, line: int, rule: str) -> bool:
        """True when `path:line` (or the line above) carries a justified
        ``analyzer-ok(rule): reason`` sanction comment."""
        f = self.files_by_path.get(path)
        if f is None:
            return False
        for lineno in (line, line - 1):
            if 1 <= lineno <= len(f.raw_lines):
                m = _SANCTION.search(f.raw_lines[lineno - 1])
                if m and m.group("rule") == rule and m.group("reason"):
                    return True
        return False

    def read_root_file(self, rel_path: str):
        """Raw text of a root-relative non-C++ contract file, or None."""
        path = self.root / rel_path
        if not path.is_file():
            return None
        return path.read_text(encoding="utf-8", errors="replace")


def chain_str(chain) -> str:
    """Render a call chain deterministically: `a → b → c`."""
    return " → ".join(chain)
