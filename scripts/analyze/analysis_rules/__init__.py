"""Rule registry for the nullgraph semantic-analysis driver.

An analysis rule is a module exposing:
    NAME: str          stable kebab-case identifier (used in output and --rules)
    DESCRIPTION: str   one-liner for --list
    check(ctx) -> list[base.Diagnostic]

Unlike the line lints (scripts/lint/), these rules see a cross-TU call
graph (analysis_rules/callgraph.py) and prove reachability/dataflow
properties: what a signal handler can transitively touch, what a chunk
callback can block on, where an RNG engine's seed flows from, and whether
the three encodings of the exit-code contract agree. See DESIGN.md
section 13 for the policy each rule encodes.

To add a rule: create a module in this package, implement the three
symbols, and append it to ALL_RULES below (order = output grouping order).
"""

from . import exec_purity, exit_contract, rng_dataflow, signal_safety

ALL_RULES = [signal_safety, exec_purity, rng_dataflow, exit_contract]
