"""Semantic RNG determinism: chunk callbacks draw only chunk-seeded streams.

The reproducibility contract (DESIGN.md §6d: a fixed seed gives
bit-identical output at any thread count) rests on one dataflow rule:
every RNG engine that lives inside a chunk callback is seeded from the
chunk-indexed stream factory — ``chunk.rng()``, or an explicit
``chunk_seed(seed, chunk.index)`` / ``task_seed(seed, unit, part)``
derivation — never from a thread id, a shared run seed reused across
chunks, or ambient state. Dutta–Fosdick–Clauset (arXiv:2105.12120) is the
cautionary tale: sampling contracts drift silently unless the discipline
is checked where the engine is *constructed*.

The regex `determinism` lint bans entropy sources (rand()/random_device/
wall clocks) anywhere; this rule upgrades it to dataflow inside the
parallel kernels: an engine construction whose seed expression does not
flow from a sanctioned chunk-stream factory is diagnosed even when every
token in it is individually legal.
"""

from __future__ import annotations

from . import base

NAME = "rng-determinism"
DESCRIPTION = ("RNG engines inside chunk callbacks must be seeded from the "
               "chunk-seeded stream factories (chunk.rng/chunk_seed/"
               "task_seed)")

#: RNG engine types (project + <random>), by last name component.
ENGINE_LASTS = frozenset({
    "Xoshiro256ss", "mt19937", "mt19937_64", "minstd_rand", "minstd_rand0",
    "default_random_engine", "knuth_b", "ranlux24", "ranlux48",
    "ranlux24_base", "ranlux48_base",
})

#: Sanctioned seed-derivation factories: depend only on (run seed, chunk
#: identity), so the stream is invariant under thread count.
FACTORY_LASTS = frozenset({"chunk_seed", "task_seed"})

#: Seeds carrying thread identity: deterministic per *thread*, which is
#: exactly the bug — output changes with the thread count.
THREAD_IDENTITY = frozenset({
    "omp_get_thread_num", "omp_get_num_threads", "this_thread", "get_id",
    "current_thread_budget",
})


def _lasts(idents):
    return [ident.rsplit("::", 1)[-1] for ident in idents]


def check(ctx):
    diags = []
    seen = set()

    def emit(path, line, message):
        key = (path, line, message)
        if key not in seen:
            seen.add(key)
            diags.append(base.Diagnostic(path, line, NAME, message))

    for site in sorted(ctx.graph.exec_callsites,
                       key=lambda s: (s.file, s.line)):
        for lam in site.lambdas:
            chunk_param = lam.first_param or "chunk"
            for con in sorted(lam.constructs, key=lambda c: c.line):
                if con.last not in ENGINE_LASTS:
                    continue
                if ctx.sanctioned(lam.file, con.line, NAME):
                    continue
                arg_lasts = _lasts(con.arg_idents)
                if any(a in FACTORY_LASTS for a in arg_lasts):
                    continue  # chunk_seed(...) / task_seed(...) derivation
                if "rng" in arg_lasts and chunk_param in con.arg_idents:
                    continue  # copy of chunk.rng() stream
                if any(a in THREAD_IDENTITY for a in arg_lasts):
                    emit(lam.file, con.line,
                         f"'{con.type_name}' inside a {site.primitive} "
                         "chunk callback is seeded from thread identity — "
                         "output then depends on the thread count; seed "
                         f"from {chunk_param}.rng() or "
                         "chunk_seed/task_seed instead")
                    continue
                emit(lam.file, con.line,
                     f"'{con.type_name}' constructed inside a "
                     f"{site.primitive} chunk callback without a "
                     "chunk-seeded stream — the seed expression must flow "
                     f"through {chunk_param}.rng(), chunk_seed(), or "
                     "task_seed() so a fixed seed stays bit-identical at "
                     "any thread count (sanction a deliberate exception "
                     "with 'analyzer-ok(rng-determinism): <why>')")
    return diags
