#!/usr/bin/env python3
"""nullgraph semantic-analysis driver.

Builds a cross-TU call graph over the source trees and runs the semantic
rules (scripts/analyze/analysis_rules/): signal-safety reachability,
exec-kernel purity, RNG-seed dataflow, and the exit-code contract.
Diagnostics use the lint driver's format and ordering:

    path:line: [rule-name] message

sorted by (path, line, rule) — deterministic and golden-testable. Exit
status: 0 when clean, 1 when any rule fired, 2 on usage errors. --json
swaps the human format for one machine-readable document on stdout.

Frontends. --frontend=libclang parses real ASTs via the clang Python
bindings + compile_commands.json; --frontend=internal uses the built-in
token-level parser (no dependencies); --frontend=auto (default) tries
libclang and degrades to internal with a notice on stderr — the analysis
always runs, the precise frontend is an upgrade, never a requirement.

    usage: run_analysis.py [--root DIR] [--rules name,name] [--list]
                           [--json] [--frontend auto|libclang|internal]
                           [--compile-commands PATH]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1]))

import analysis_rules  # noqa: E402
from analysis_rules import base, callgraph, frontend_libclang  # noqa: E402


def _build_graph(tree, frontend: str, compile_commands):
    """Returns (graph, notice-or-None). Raises only on --frontend=libclang
    when libclang is genuinely unusable (explicit request, hard failure)."""
    if frontend == "internal":
        return callgraph.build_call_graph(tree), None
    try:
        return frontend_libclang.build_call_graph(
            tree, compile_commands=compile_commands), None
    except frontend_libclang.FrontendUnavailable as exc:
        if frontend == "libclang":
            raise
        notice = (f"analysis: note: libclang frontend unavailable ({exc}); "
                  "falling back to the internal frontend")
        return callgraph.build_call_graph(tree), notice


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root", default=None,
        help="directory to scan (default: the repository root)")
    parser.add_argument(
        "--rules", default=None,
        help="comma-separated rule names to run (default: all)")
    parser.add_argument(
        "--list", action="store_true", help="list rules and exit")
    parser.add_argument(
        "--json", action="store_true",
        help="emit one machine-readable JSON document instead of lines")
    parser.add_argument(
        "--frontend", choices=("auto", "libclang", "internal"),
        default="auto",
        help="call-graph frontend (default: auto = libclang when usable, "
             "else internal)")
    parser.add_argument(
        "--compile-commands", default=None, metavar="PATH",
        help="compile_commands.json (or its directory) for the libclang "
             "frontend (default: <root>/compile_commands.json)")
    args = parser.parse_args(argv)

    rules = analysis_rules.ALL_RULES
    if args.rules is not None:
        wanted = [name.strip() for name in args.rules.split(",")
                  if name.strip()]
        by_name = {rule.NAME: rule for rule in rules}
        unknown = [name for name in wanted if name not in by_name]
        if unknown:
            known = ", ".join(sorted(by_name))
            print(f"unknown rule(s): {', '.join(unknown)} (known: {known})",
                  file=sys.stderr)
            return 2
        rules = [by_name[name] for name in wanted]

    if args.list:
        for rule in rules:
            print(f"{rule.NAME}: {rule.DESCRIPTION}")
        return 0

    root = pathlib.Path(args.root) if args.root else \
        pathlib.Path(__file__).resolve().parents[2]
    if not root.is_dir():
        print(f"not a directory: {root}", file=sys.stderr)
        return 2

    tree = base.SourceTree(root)
    try:
        graph, notice = _build_graph(tree, args.frontend,
                                     args.compile_commands)
    except frontend_libclang.FrontendUnavailable as exc:
        print(f"analysis: libclang frontend unavailable: {exc}",
              file=sys.stderr)
        return 2
    if notice:
        print(notice, file=sys.stderr)

    ctx = base.AnalysisContext(root=root, tree=tree, graph=graph)
    diagnostics = []
    for rule in rules:
        diagnostics.extend(rule.check(ctx))
    diagnostics.sort(key=lambda d: (d.path, d.line, d.rule, d.message))

    if args.json:
        payload = base.diagnostics_to_json(
            "analysis", diagnostics, rules=[rule.NAME for rule in rules],
            files_scanned=len(tree.files),
            extra={"frontend": graph.frontend,
                   "functions": len(graph.functions),
                   "exec_callsites": len(graph.exec_callsites)})
        json.dump(payload, sys.stdout, indent=2)
        print()
        return 1 if diagnostics else 0

    for diag in diagnostics:
        print(diag.format())
    names = ", ".join(rule.NAME for rule in rules)
    if diagnostics:
        print(f"analysis: {len(diagnostics)} issue(s) found "
              f"({len(tree.files)} files scanned; frontend: "
              f"{graph.frontend}; rules: {names})")
        return 1
    print(f"analysis: clean ({len(tree.files)} files scanned; frontend: "
          f"{graph.frontend}; rules: {names})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
