#!/usr/bin/env python3
"""Tests for the semantic analyzer (scripts/analyze/).

Four layers:
  - driver tests: golden output over the bad fixture tree, clean fixture
    and real-tree runs, --rules/--list/--json/--frontend plumbing;
  - per-rule fixture tests: exact file:line diagnostics for each of the
    four contracts (signal-safety, exec-purity, rng-determinism,
    exit-contract);
  - contract-proof tests on the real tree: the flight-recorder dump path
    is a registered signal-safe root and its cone proves clean, and a
    deliberately drifted README exit-code row is detected;
  - sanction-discipline tests: a justified `analyzer-ok(rule): reason`
    suppresses, a bare one does not.

Run directly (python3 scripts/analyze/tests/test_analysis.py) or via
ctest (registered as analyzer_framework in tests/CMakeLists.txt).
"""

import json
import pathlib
import re
import shutil
import subprocess
import sys
import tempfile
import unittest

TESTS_DIR = pathlib.Path(__file__).resolve().parent
ANALYZE_DIR = TESTS_DIR.parent
REPO_ROOT = ANALYZE_DIR.parents[1]
DRIVER = ANALYZE_DIR / "run_analysis.py"
FIXTURES = TESTS_DIR / "fixtures"
GOLDEN = TESTS_DIR / "golden"


def run_driver(*args, frontend="internal"):
    """Run the driver; the internal frontend is forced by default so the
    output is identical on hosts with and without libclang."""
    extra = ("--frontend", frontend) if frontend else ()
    return subprocess.run(
        [sys.executable, str(DRIVER), *extra, *args],
        capture_output=True, text=True, check=False)


class DriverTest(unittest.TestCase):
    def test_bad_fixture_matches_golden_and_exits_nonzero(self):
        result = run_driver("--root", str(FIXTURES / "bad"))
        self.assertEqual(result.returncode, 1)
        golden = (GOLDEN / "bad_fixture.txt").read_text(encoding="utf-8")
        self.assertEqual(result.stdout, golden)

    def test_clean_fixture_passes(self):
        result = run_driver("--root", str(FIXTURES / "clean"))
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("analysis: clean", result.stdout)

    def test_real_tree_is_clean(self):
        result = run_driver("--root", str(REPO_ROOT))
        self.assertEqual(result.returncode, 0, result.stdout)

    def test_rule_filter_runs_only_named_rules(self):
        result = run_driver("--root", str(FIXTURES / "bad"),
                            "--rules", "signal-safety")
        self.assertEqual(result.returncode, 1)
        self.assertIn("[signal-safety]", result.stdout)
        self.assertNotIn("[exec-purity]", result.stdout)
        self.assertNotIn("[exit-contract]", result.stdout)

    def test_unknown_rule_is_usage_error(self):
        result = run_driver("--rules", "no-such-rule")
        self.assertEqual(result.returncode, 2)
        self.assertIn("unknown rule", result.stderr)

    def test_list_names_all_rules(self):
        result = run_driver("--list")
        self.assertEqual(result.returncode, 0)
        for name in ("signal-safety", "exec-purity", "rng-determinism",
                     "exit-contract"):
            self.assertIn(name, result.stdout)

    def test_json_output_on_bad_tree(self):
        result = run_driver("--root", str(FIXTURES / "bad"), "--json")
        self.assertEqual(result.returncode, 1)
        payload = json.loads(result.stdout)
        self.assertEqual(payload["tool"], "analysis")
        self.assertFalse(payload["clean"])
        self.assertEqual(payload["frontend"], "internal")
        self.assertGreater(len(payload["diagnostics"]), 0)
        first = payload["diagnostics"][0]
        for key in ("path", "line", "rule", "message"):
            self.assertIn(key, first)

    def test_json_output_on_clean_tree(self):
        result = run_driver("--root", str(FIXTURES / "clean"), "--json")
        self.assertEqual(result.returncode, 0)
        payload = json.loads(result.stdout)
        self.assertTrue(payload["clean"])
        self.assertEqual(payload["diagnostics"], [])

    def test_auto_frontend_degrades_with_notice_not_failure(self):
        # Whether or not libclang is installed, --frontend=auto must run
        # the analysis; without libclang a notice goes to stderr.
        result = run_driver("--root", str(FIXTURES / "clean"),
                            frontend="auto")
        self.assertEqual(result.returncode, 0,
                         result.stdout + result.stderr)
        if "frontend: internal" in result.stdout:
            self.assertIn("libclang frontend unavailable", result.stderr)


class RuleDiagnosticsTest(unittest.TestCase):
    """Exact file:line assertions per rule over the bad fixture tree."""

    @classmethod
    def setUpClass(cls):
        cls.out = run_driver("--root", str(FIXTURES / "bad")).stdout

    def test_signal_safety_flags_snprintf_in_handler(self):
        self.assertIn(
            "src/core/bad_signal_handler.cpp:32: [signal-safety] "
            "'std::snprintf'", self.out)

    def test_signal_safety_flags_transitive_allocation_with_chain(self):
        self.assertIn(
            "src/core/bad_signal_handler.cpp:22: [signal-safety] operator "
            "new in the signal cone of 'on_crash' (via on_crash → "
            "format_report)", self.out)
        self.assertIn(
            "src/core/bad_signal_handler.cpp:21: [signal-safety] "
            "'std::string' constructed", self.out)

    def test_signal_safety_flags_guarded_static(self):
        self.assertIn(
            "src/core/bad_signal_handler.cpp:16: [signal-safety] "
            "function-local static 'Panic'", self.out)

    def test_signal_safety_flags_unprovable_external_call(self):
        self.assertIn(
            "src/core/bad_signal_handler.cpp:35: [signal-safety] cannot "
            "prove 'vendor_hook' async-signal-safe", self.out)

    def test_exec_purity_flags_direct_lock_and_stream(self):
        self.assertIn(
            "src/core/bad_exec_callback.cpp:23: [exec-purity] lock "
            "'std::lock_guard'", self.out)
        self.assertIn(
            "src/core/bad_exec_callback.cpp:29: [exec-purity] file stream "
            "'std::ofstream'", self.out)

    def test_exec_purity_flags_transitive_io_with_chain(self):
        self.assertIn(
            "src/core/bad_exec_callback.cpp:14: [exec-purity] 'std::fopen' "
            "(file I/O) inside a for_chunks chunk callback (reached via "
            "append_row)", self.out)

    def test_rng_determinism_flags_shared_run_seed(self):
        self.assertIn(
            "src/core/bad_rng_seed.cpp:20: [rng-determinism] "
            "'nullgraph::Xoshiro256ss' constructed inside a for_chunks "
            "chunk callback without a chunk-seeded stream", self.out)

    def test_rng_determinism_flags_thread_identity_seed(self):
        self.assertIn(
            "src/core/bad_rng_seed.cpp:25: [rng-determinism] "
            "'std::mt19937' inside a for_chunks chunk callback is seeded "
            "from thread identity", self.out)

    def test_exit_contract_flags_missing_case_and_duplicate_exit(self):
        self.assertIn(
            "src/robustness/status.cpp:16: [exit-contract] "
            "status_exit_code has no case for StatusCode::kStale",
            self.out)
        self.assertIn(
            "src/robustness/status.cpp:21: [exit-contract] exit status 2 "
            "is mapped by both kInternal and kIoError", self.out)

    def test_exit_contract_flags_wrong_name_string(self):
        self.assertIn(
            'src/robustness/status.cpp:10: [exit-contract] '
            'status_code_name returns "kIoFailure" for '
            'StatusCode::kIoError', self.out)

    def test_exit_contract_flags_readme_drift_and_stale_row(self):
        self.assertIn(
            "README.md:9: [exit-contract] exit-code table says kInternal "
            "= exit 3, but status_exit_code returns 2", self.out)
        self.assertIn(
            "README.md:11: [exit-contract] exit-code table documents "
            "kRetired", self.out)

    def test_exit_contract_flags_hardcoded_cli_exit(self):
        self.assertIn(
            "tools/bad_cli.cpp:7: [exit-contract] hardcoded exit(7)",
            self.out)


class RealTreeContractTest(unittest.TestCase):
    """The analyzer's reason for existing: proofs over the real tree."""

    def test_flight_recorder_dump_is_a_registered_root(self):
        sys.path.insert(0, str(ANALYZE_DIR))
        sys.path.insert(0, str(ANALYZE_DIR.parent))
        from analysis_rules import base, callgraph, signal_safety
        from checklib import SourceTree
        tree = SourceTree(REPO_ROOT)
        graph = callgraph.build_call_graph(tree)
        ctx = base.AnalysisContext(root=REPO_ROOT, tree=tree, graph=graph)
        markers = {fn.qname for fn in signal_safety._marker_roots(ctx)}
        self.assertIn("nullgraph::obs::FlightRecorder::dump", markers)
        handlers = {fn.name for fn in signal_safety._handler_roots(ctx)}
        self.assertIn("on_fatal_signal", handlers)
        self.assertIn("on_termination_signal", handlers)

    def test_signal_safety_proves_real_dump_path(self):
        result = run_driver("--root", str(REPO_ROOT),
                            "--rules", "signal-safety")
        self.assertEqual(result.returncode, 0, result.stdout)

    def test_drifted_readme_row_is_detected(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = pathlib.Path(tmp)
            (root / "src" / "robustness").mkdir(parents=True)
            for name in ("status.hpp", "status.cpp"):
                shutil.copy(REPO_ROOT / "src" / "robustness" / name,
                            root / "src" / "robustness" / name)
            readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
            drifted, n = re.subn(r"\|\s*13\s*\|\s*`kCancelled`",
                                 "| 12 | `kCancelled`", readme)
            self.assertEqual(n, 1, "README fixture row not found")
            (root / "README.md").write_text(drifted, encoding="utf-8")
            result = run_driver("--root", str(root),
                                "--rules", "exit-contract")
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("kCancelled = exit 12, but status_exit_code returns "
                      "13", result.stdout)

    def test_untouched_copy_of_contract_files_is_clean(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = pathlib.Path(tmp)
            (root / "src" / "robustness").mkdir(parents=True)
            for name in ("status.hpp", "status.cpp"):
                shutil.copy(REPO_ROOT / "src" / "robustness" / name,
                            root / "src" / "robustness" / name)
            shutil.copy(REPO_ROOT / "README.md", root / "README.md")
            result = run_driver("--root", str(root),
                                "--rules", "exit-contract")
        self.assertEqual(result.returncode, 0, result.stdout)


SANCTIONED = """
#include <mutex>
#include "exec/exec.hpp"
namespace {
std::mutex g_mu;
void run(const exec::ParallelContext& ctx) {
  exec::for_chunks(ctx, 64, 8, [&](const exec::Chunk& chunk) {
    %s
    std::lock_guard<std::mutex> hold(g_mu);
    (void)chunk;
  });
}
}  // namespace
"""


class SanctionDisciplineTest(unittest.TestCase):
    def _run_with(self, comment):
        with tempfile.TemporaryDirectory() as tmp:
            root = pathlib.Path(tmp)
            (root / "src" / "core").mkdir(parents=True)
            (root / "src" / "core" / "snippet.cpp").write_text(
                SANCTIONED % comment, encoding="utf-8")
            return run_driver("--root", str(root),
                              "--rules", "exec-purity")

    def test_justified_sanction_suppresses(self):
        result = self._run_with(
            "// analyzer-ok(exec-purity): held for a bounded debug count")
        self.assertEqual(result.returncode, 0, result.stdout)

    def test_bare_sanction_does_not_suppress(self):
        result = self._run_with("// analyzer-ok(exec-purity):")
        self.assertEqual(result.returncode, 1, result.stdout)

    def test_wrong_rule_sanction_does_not_suppress(self):
        result = self._run_with(
            "// analyzer-ok(signal-safety): wrong contract entirely")
        self.assertEqual(result.returncode, 1, result.stdout)


if __name__ == "__main__":
    unittest.main(verbosity=2)
