#pragma once
// Fixture: a reduced StatusCode taxonomy whose three encodings agree.

namespace nullgraph {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument,
  kInternal,
  kIoError,
};

const char* status_code_name(StatusCode code) noexcept;
int status_exit_code(StatusCode code) noexcept;

}  // namespace nullgraph
