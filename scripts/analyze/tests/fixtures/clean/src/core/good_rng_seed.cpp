// Fixture: the two sanctioned chunk-stream idioms — a task_seed
// derivation and a copy of the chunk's own pre-seeded stream.
#include "exec/exec.hpp"
#include "util/rng.hpp"

namespace {

void run(const exec::ParallelContext& ctx, unsigned long long seed) {
  exec::for_chunks(ctx, 1024, 64, [&](const exec::Chunk& chunk) {
    nullgraph::Xoshiro256ss rng(nullgraph::task_seed(seed, 0, chunk.index));
    (void)rng;
  });
  exec::for_chunks(ctx, 1024, 64, [&](const exec::Chunk& chunk) {
    nullgraph::Xoshiro256ss rng(chunk.rng());
    (void)rng;
  });
}

}  // namespace
