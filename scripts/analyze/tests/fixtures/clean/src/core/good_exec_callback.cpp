// Fixture: pure chunk callbacks — CPU work only, plus one deliberate,
// sanctioned exception proving the escape hatch works.
#include <cstdio>

#include "exec/exec.hpp"

namespace {

int weight(std::size_t i) { return static_cast<int>(i % 7); }

void run(const exec::ParallelContext& ctx) {
  exec::for_chunks(ctx, 1024, 64, [&](const exec::Chunk& chunk) {
    int acc = 0;
    for (std::size_t i = chunk.begin; i < chunk.end; ++i) acc += weight(i);
    (void)acc;
  });
  exec::for_chunks(ctx, 1024, 64, [&](const exec::Chunk& chunk) {
    // analyzer-ok(exec-purity): debug tracing behind a compile-time flag
    std::FILE* f = std::fopen("trace.log", "a");
    if (f != nullptr) {
      // analyzer-ok(exec-purity): debug tracing behind a compile-time flag
      std::fclose(f);
    }
    (void)chunk;
  });
}

}  // namespace
