// Fixture: a fatal-signal cone the analyzer can prove safe — allowlisted
// syscalls, atomics, a marker-rooted dump helper, and one sanctioned
// function-local static constructed before the handler is installed.
#include <csignal>
#include <unistd.h>

#include <atomic>
#include <cstring>

namespace {

struct Watchdog {
  std::atomic<int> armed{0};
};

Watchdog& watchdog() {
  // analyzer-ok(signal-safety): constructed before the handler is installed
  static Watchdog dog;
  return dog;
}

std::atomic<int>& crash_flag() {
  static std::atomic<int> flag{0};
  return flag;
}

// analyzer: signal-safe-root
bool dump_note(const char* path) {
  char buf[32];
  std::memcpy(buf, "crash\n", 6);
  (void)path;
  return ::write(2, buf, 6) == 6;
}

void on_crash(int signo) {
  crash_flag().store(signo, std::memory_order_relaxed);
  watchdog().armed.store(1, std::memory_order_relaxed);
  dump_note("crash.txt");
  ::_exit(2);
}

}  // namespace

void install_crash_handler() { std::signal(SIGSEGV, on_crash); }
