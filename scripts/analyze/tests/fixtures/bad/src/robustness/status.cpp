#include "robustness/status.hpp"

namespace nullgraph {

const char* status_code_name(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "kOk";
    case StatusCode::kInvalidArgument: return "kInvalidArgument";
    case StatusCode::kInternal: return "kInternal";
    case StatusCode::kIoError: return "kIoFailure";
    case StatusCode::kStale: return "kStale";
  }
  return "kUnknown";
}

int status_exit_code(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return 0;
    case StatusCode::kInvalidArgument: return 1;
    case StatusCode::kInternal: return 2;
    case StatusCode::kIoError: return 2;
    default: return 2;
  }
}

}  // namespace nullgraph
