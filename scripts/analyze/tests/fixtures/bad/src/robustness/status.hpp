#pragma once
// Fixture: a reduced StatusCode taxonomy whose three encodings disagree —
// kStale has no status_exit_code case, kIoError's name string is wrong,
// and the README table drifts (see fixture README.md).

namespace nullgraph {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument,
  kInternal,
  kIoError,
  kStale,
};

const char* status_code_name(StatusCode code) noexcept;
int status_exit_code(StatusCode code) noexcept;

}  // namespace nullgraph
