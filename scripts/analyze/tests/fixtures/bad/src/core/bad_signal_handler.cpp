// Fixture: a fatal-signal handler whose cone violates async-signal-safety
// in every way the rule distinguishes: direct stdio, transitive
// allocation via a helper, a guarded function-local static, and a call
// the analyzer cannot prove safe.
#include <csignal>
#include <cstdio>
#include <string>

namespace {

struct Panic {
  int code = 0;
};

Panic& panic_state() {
  static Panic state;  // lazy init guard inside the cone
  return state;
}

void format_report(int signo) {
  std::string text = "signal";  // allocates
  char* scratch = new char[64];  // operator new
  (void)text;
  (void)scratch;
  (void)signo;
}

void vendor_hook();  // declared, never defined: unprovable

void on_crash(int signo) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "sig %d", signo);  // not signal-safe
  format_report(signo);
  panic_state().code = signo;
  vendor_hook();
}

}  // namespace

void install_crash_handler() { std::signal(SIGSEGV, on_crash); }
