// Fixture: RNG engines inside chunk callbacks seeded outside the
// chunk-stream discipline — a shared run seed reused by every chunk
// (streams collide) and a thread-id seed (output depends on thread
// count).
#include <omp.h>

#include <random>

#include "exec/exec.hpp"
#include "util/rng.hpp"

namespace {

struct Config {
  unsigned long long seed = 42;
};

void run(const exec::ParallelContext& ctx, const Config& config) {
  exec::for_chunks(ctx, 1024, 64, [&](const exec::Chunk& chunk) {
    nullgraph::Xoshiro256ss rng(config.seed);  // same stream in every chunk
    (void)chunk;
    (void)rng;
  });
  exec::for_chunks(ctx, 1024, 64, [&](const exec::Chunk& chunk) {
    std::mt19937 gen(omp_get_thread_num());  // thread identity as seed
    (void)chunk;
    (void)gen;
  });
}

}  // namespace
