// Fixture: chunk callbacks that block — a lock acquired directly, file
// I/O reached transitively through a helper, and a stream construction.
#include <cstdio>
#include <fstream>
#include <mutex>

#include "exec/exec.hpp"

namespace {

std::mutex g_mu;

void append_row(int value) {
  std::FILE* f = std::fopen("rows.txt", "a");  // blocking I/O, two deep
  if (f != nullptr) {
    std::fprintf(f, "%d\n", value);
    std::fclose(f);
  }
}

void run(const exec::ParallelContext& ctx) {
  exec::for_chunks(ctx, 1024, 64, [&](const exec::Chunk& chunk) {
    std::lock_guard<std::mutex> hold(g_mu);  // lock inside the kernel
    for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
      append_row(static_cast<int>(i));
    }
  });
  exec::for_chunks(ctx, 1024, 64, [&](const exec::Chunk& chunk) {
    std::ofstream out("chunk.log");  // opening a file per chunk
    out << chunk.begin;
  });
}

}  // namespace
