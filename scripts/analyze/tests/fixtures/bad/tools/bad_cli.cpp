// Fixture: a CLI inventing exit statuses instead of mapping StatusCode.
#include <cstdlib>

#include "robustness/status.hpp"

int main() {
  std::exit(7);  // undocumented exit status
}
