#!/usr/bin/env bash
# Deterministic chaos drill for `nullgraph serve` (DESIGN.md §9, §12).
#
# Four phases, every expectation exact:
#
#   1. admission storm — 8 concurrent submits against slots=2 queue=2 with
#      slot-holding jobs: exactly 4 complete (exit 0) and exactly 4 are
#      shed with typed kOverloaded (exit 18) carrying a retry-after hint;
#      the daemon report must account for every reject.
#   2. SIGKILL + restart — a checkpointed long job is killed mid-swap-chain
#      (kill -9, no cleanup path runs). Already-committed output must
#      survive byte-for-byte, no torn output may appear, and a restarted
#      daemon must resume the spooled job to a committed, parseable output
#      with an empty spool afterwards.
#   3. accept chaos — --inject-accept-fail drops the first accepted
#      connections on the floor; clients must fail typed (not hang), and
#      the daemon must keep serving afterwards even with a slow-client
#      injection active.
#   4. flight recorder black box — a deadline-curtailed job must dump the
#      event ring to flight.jsonl (typed client exit 12), then a SIGKILL
#      mid-job leaves both black-box artifacts behind: flight.jsonl intact
#      (it was committed atomically at the curtailment) and events.jsonl a
#      valid, schema-clean prefix (each line is flushed whole).
#
# Used by scripts/check.sh as the serve_smoke tier; also runnable
# standalone: scripts/chaos_serve.sh [workdir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}
BIN=$BUILD_DIR/tools/nullgraph
WORK=${1:-$BUILD_DIR/chaos-serve}

[[ -x "$BIN" ]] || { echo "chaos_serve: $BIN not built" >&2; exit 1; }
rm -rf "$WORK"
mkdir -p "$WORK"

fail() { echo "chaos_serve: FAIL: $*" >&2; exit 1; }

wait_for_socket() {  # path
  for _ in $(seq 1 100); do [[ -S "$1" ]] && return 0; sleep 0.1; done
  fail "socket $1 never appeared"
}

wait_for_ping() {  # socket
  for _ in $(seq 1 100); do
    "$BIN" submit --socket "$1" --ping >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  fail "daemon at $1 never answered ping"
}

# ---------------------------------------------------------------- phase 1
echo "== chaos_serve phase 1: admission storm (8 jobs vs slots=2 queue=2) =="
SOCK=$WORK/storm.sock
"$BIN" serve --socket "$SOCK" --slots 2 --queue 2 \
  --report-json "$WORK/storm_report.json" >"$WORK/storm_daemon.log" 2>&1 &
STORM_PID=$!
wait_for_ping "$SOCK"

# Every job holds its slot for 2 s via the injection hook, so all 8
# submissions land while the first 2 are running and 2 more are queued —
# the admission verdicts are fully determined. The small stagger lets each
# verdict settle (worker dequeue is a cv-notify away) without ever letting
# a slot free up: 8 x 0.15 s of staggering is well under the 2 s hold.
STORM_JOBS=()
for i in $(seq 1 8); do
  { rc=0
    "$BIN" submit --socket "$SOCK" --n 2000 --dmax 50 --swaps 1 --seed "$i" \
      --inject-job-slow-ms 2000 >/dev/null 2>&1 || rc=$?
    echo "$rc" >"$WORK/storm_rc.$i"; } &
  STORM_JOBS+=("$!")
  sleep 0.15
done
# Wait only on the submit subshells — a bare `wait` would also wait on the
# daemon, which by design never exits until told to.
wait "${STORM_JOBS[@]}"

COMPLETED=$(cat "$WORK"/storm_rc.* | grep -cx 0 || true)
OVERLOADED=$(cat "$WORK"/storm_rc.* | grep -cx 18 || true)
[[ "$COMPLETED" == 4 ]] || fail "expected exactly 4 completions, got $COMPLETED"
[[ "$OVERLOADED" == 4 ]] || fail "expected exactly 4 kOverloaded (exit 18), got $OVERLOADED"

"$BIN" submit --socket "$SOCK" --shutdown >/dev/null 2>&1 || true
wait "$STORM_PID" || fail "storm daemon exited non-zero"
python3 - "$WORK/storm_report.json" <<'PY'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["serve_report_version"] == 1, r
assert r["completed"] == 4, r
assert r["rejected"] == 4, r
assert r["counters"].get("serve.admission_rejects") == 4, r
assert r["counters"].get("serve.jobs_completed") == 4, r
PY
echo "   ok: 4 completed, 4 shed with typed kOverloaded, report accounts for all"

# ---------------------------------------------------------------- phase 2
echo "== chaos_serve phase 2: SIGKILL mid-job, restart, recover =="
SOCK=$WORK/crash.sock
SPOOL=$WORK/spool
"$BIN" serve --socket "$SOCK" --slots 2 --spool "$SPOOL" \
  >"$WORK/crash_daemon.log" 2>&1 &
CRASH_PID=$!
wait_for_ping "$SOCK"

# Survivor: a quick server-side job whose output commits before the kill.
"$BIN" submit --socket "$SOCK" --n 2000 --dmax 50 --swaps 1 \
  --out "$WORK/quick.txt" >/dev/null 2>&1 || fail "quick job failed"
[[ -s "$WORK/quick.txt" ]] || fail "quick job committed no output"
cp "$WORK/quick.txt" "$WORK/quick.txt.before"

# Victim: a checkpointed long job; kill the daemon once its first snapshot
# hits the spool (poll, not sleep — deterministic on any machine speed).
"$BIN" submit --socket "$SOCK" --n 100000 --dmax 500 --swaps 3000 \
  --checkpoint-every 50 --out "$WORK/big.txt" >/dev/null 2>&1 &
VICTIM_PID=$!
for _ in $(seq 1 200); do
  compgen -G "$SPOOL/job-*.ckpt" >/dev/null && break
  sleep 0.05
done
compgen -G "$SPOOL/job-*.ckpt" >/dev/null || fail "no checkpoint ever spooled"
compgen -G "$SPOOL/job-*.meta" >/dev/null || fail "no meta spooled beside the checkpoint"

kill -9 "$CRASH_PID"
wait "$VICTIM_PID" 2>/dev/null || true  # client dies with the daemon; that's the point
wait "$CRASH_PID" 2>/dev/null || true

cmp -s "$WORK/quick.txt" "$WORK/quick.txt.before" \
  || fail "SIGKILL corrupted already-committed output"
if [[ -e "$WORK/big.txt" ]]; then
  fail "torn output delivered for the killed job"
fi

"$BIN" serve --socket "$SOCK" --slots 2 --spool "$SPOOL" \
  --report-json "$WORK/crash_report.json" >"$WORK/restart_daemon.log" 2>&1 &
RESTART_PID=$!
wait_for_ping "$SOCK"
"$BIN" submit --socket "$SOCK" --shutdown >/dev/null 2>&1 || true
wait "$RESTART_PID" || fail "restarted daemon exited non-zero"

[[ -s "$WORK/big.txt" ]] || fail "restart did not commit the recovered output"
"$BIN" stats --in "$WORK/big.txt" >/dev/null || fail "recovered output is not parseable"
if compgen -G "$SPOOL/job-*" >/dev/null; then
  fail "spool not consumed by recovery"
fi
python3 - "$WORK/crash_report.json" <<'PY'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["serve_report_version"] == 1, r
assert r["recovered"] == 1, r
assert r["counters"].get("serve.jobs_recovered") == 1, r
PY
echo "   ok: committed output survived, killed job recovered, spool drained"

# ---------------------------------------------------------------- phase 3
echo "== chaos_serve phase 3: accept-drop and slow-client injections =="
SOCK=$WORK/flaky.sock
"$BIN" serve --socket "$SOCK" --slots 1 \
  --inject-accept-fail 1 --inject-slow-client-ms 20 \
  --report-json "$WORK/flaky_report.json" >"$WORK/flaky_daemon.log" 2>&1 &
FLAKY_PID=$!
wait_for_socket "$SOCK"
if "$BIN" submit --socket "$SOCK" --ping >/dev/null 2>&1; then
  fail "expected the first connection to be chaos-dropped"
fi
wait_for_ping "$SOCK"  # the daemon must still be serving after the drop
"$BIN" submit --socket "$SOCK" --n 2000 --dmax 50 --swaps 1 \
  >/dev/null 2>&1 || fail "submit after chaos drop failed"
"$BIN" submit --socket "$SOCK" --shutdown >/dev/null 2>&1 || true
wait "$FLAKY_PID" || fail "flaky daemon exited non-zero"
python3 - "$WORK/flaky_report.json" <<'PY'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["serve_report_version"] == 1, r
assert r["counters"].get("serve.chaos_accept_drops") == 1, r
assert r["completed"] == 1, r
PY
echo "   ok: dropped connection failed typed, daemon kept serving"

# ---------------------------------------------------------------- phase 4
echo "== chaos_serve phase 4: flight recorder black box =="
SOCK=$WORK/flight.sock
"$BIN" serve --socket "$SOCK" --slots 1 \
  --events-out "$WORK/flight_events.jsonl" --flight-out "$WORK/flight.jsonl" \
  >"$WORK/flight_daemon.log" 2>&1 &
FLIGHT_PID=$!
wait_for_ping "$SOCK"

# A job whose 100 ms deadline expires mid-swap-chain: the client must exit
# with the typed deadline code (12), and the scheduler must dump the event
# ring to flight.jsonl at the curtailment — while the daemon keeps running.
rc=0
"$BIN" submit --socket "$SOCK" --n 100000 --dmax 500 --swaps 5000 \
  --deadline-ms 100 --out "$WORK/curtailed.txt" >/dev/null 2>&1 || rc=$?
[[ "$rc" == 12 ]] || fail "expected typed deadline exit 12, got $rc"
[[ -s "$WORK/flight.jsonl" ]] || fail "curtailment did not dump the flight ring"
python3 scripts/validate_events.py --allow-partial "$WORK/flight.jsonl" \
  >/dev/null || fail "flight.jsonl dump is not schema-clean"
grep -q '"event":"curtailment"' "$WORK/flight.jsonl" \
  || fail "flight.jsonl does not contain the triggering curtailment"
cp "$WORK/flight.jsonl" "$WORK/flight.jsonl.before"

# SIGKILL the daemon mid-job: no handler runs, no flush happens. The
# already-committed flight dump must survive byte-for-byte, and the event
# stream must still be a valid prefix (line-granular flushing is the
# contract that makes the stream useful for post-mortems at all).
"$BIN" submit --socket "$SOCK" --n 100000 --dmax 500 --swaps 3000 \
  --out "$WORK/doomed.txt" >/dev/null 2>&1 &
DOOMED_PID=$!
sleep 0.3  # let the job admit and start emitting phase events
kill -9 "$FLIGHT_PID"
wait "$DOOMED_PID" 2>/dev/null || true  # client dies with the daemon
wait "$FLIGHT_PID" 2>/dev/null || true

cmp -s "$WORK/flight.jsonl" "$WORK/flight.jsonl.before" \
  || fail "SIGKILL corrupted the committed flight dump"
python3 scripts/validate_events.py --allow-partial --min-events 3 \
  "$WORK/flight_events.jsonl" >/dev/null \
  || fail "surviving events.jsonl is not a valid prefix"
grep -q '"event":"job_admitted"' "$WORK/flight_events.jsonl" \
  || fail "surviving events.jsonl lost the job lifecycle"
echo "   ok: curtailment dumped the ring, SIGKILL left valid black-box artifacts"

echo "chaos_serve: all phases passed"
