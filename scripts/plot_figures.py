#!/usr/bin/env python3
"""Plot the paper's figures from the bench binaries' text output.

Usage:
    build/bench/bench_fig3_quality     > out/fig3.txt
    build/bench/bench_fig4_convergence > out/fig4.txt
    build/bench/bench_lfr              > out/lfr.txt
    python3 scripts/plot_figures.py out/

Produces fig3.png (grouped error bars), fig4.png (convergence curves) and
lfr.png (NMI vs mu) next to the inputs. Requires matplotlib; degrades to a
message when it is missing.
"""

import os
import re
import sys


def parse_fig3(path):
    sections = {}
    current = None
    for line in open(path):
        m = re.match(r"% error in (.+)", line)
        if m:
            current = m.group(1).strip()
            sections[current] = {}
            continue
        fields = line.split()
        if current and len(fields) == 5 and fields[0] != "dataset":
            try:
                sections[current][fields[0]] = [float(x) for x in fields[1:]]
            except ValueError:
                pass
    return sections


def parse_fig4(path):
    rows = []
    for line in open(path):
        fields = line.split()
        if len(fields) == 5:
            try:
                rows.append([float(x) for x in fields])
            except ValueError:
                pass
    floor = None
    for line in open(path):
        m = re.search(r"floor.*: ([0-9.]+)", line)
        if m:
            floor = float(m.group(1))
    return rows, floor


def parse_lfr(path):
    rows = []
    for line in open(path):
        fields = line.split()
        if len(fields) == 9 and fields[0] != "mu":
            try:
                rows.append([float(x) for x in fields])
            except ValueError:
                pass
    return rows


def main():
    out_dir = sys.argv[1] if len(sys.argv) > 1 else "out"
    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not available; printing parsed tables instead")
        plt = None

    methods = ["O(m)", "O(m) simple", "O(n^2) edgeskip", "ours"]

    fig3_path = os.path.join(out_dir, "fig3.txt")
    if os.path.exists(fig3_path):
        sections = parse_fig3(fig3_path)
        if plt:
            fig, axes = plt.subplots(len(sections), 1, figsize=(7, 9))
            for ax, (metric, data) in zip(axes, sections.items()):
                datasets = list(data)
                for k, method in enumerate(methods):
                    ax.bar([i + 0.2 * k for i in range(len(datasets))],
                           [data[d][k] for d in datasets], width=0.18,
                           label=method)
                ax.set_xticks([i + 0.3 for i in range(len(datasets))])
                ax.set_xticklabels(datasets)
                ax.set_ylabel(f"% error in {metric}")
                ax.set_yscale("log")
                ax.legend(fontsize=7)
            fig.tight_layout()
            fig.savefig(os.path.join(out_dir, "fig3.png"), dpi=150)
            print("wrote fig3.png")
        else:
            print(sections)

    fig4_path = os.path.join(out_dir, "fig4.txt")
    if os.path.exists(fig4_path):
        rows, floor = parse_fig4(fig4_path)
        if plt and rows:
            fig, ax = plt.subplots(figsize=(7, 4.5))
            iters = [r[0] for r in rows]
            for k, method in enumerate(methods):
                ax.plot(iters, [r[k + 1] for r in rows], marker="o",
                        label=method)
            if floor:
                ax.axhline(floor, linestyle="--", color="gray",
                           label="sampling floor")
            ax.set_xlabel("swap iterations")
            ax.set_ylabel("attachment error (weighted L1 / m)")
            ax.legend(fontsize=8)
            fig.tight_layout()
            fig.savefig(os.path.join(out_dir, "fig4.png"), dpi=150)
            print("wrote fig4.png")

    lfr_path = os.path.join(out_dir, "lfr.txt")
    if os.path.exists(lfr_path):
        rows = parse_lfr(lfr_path)
        if plt and rows:
            fig, ax = plt.subplots(figsize=(6, 4))
            ax.plot([r[0] for r in rows], [r[7] for r in rows], marker="o",
                    label="label propagation NMI")
            ax.plot([r[0] for r in rows], [r[8] for r in rows], marker="s",
                    label="modularity of detected partition")
            ax.set_xlabel("mixing parameter mu")
            ax.set_ylabel("recovery")
            ax.legend()
            fig.tight_layout()
            fig.savefig(os.path.join(out_dir, "lfr.png"), dpi=150)
            print("wrote lfr.png")


if __name__ == "__main__":
    main()
