#!/usr/bin/env python3
"""nullgraph lint driver.

Runs the project's static lint rules (scripts/lint/lint_rules/) over the
source trees and prints one diagnostic per line:

    path:line: [rule-name] message

Diagnostics are sorted by (path, line, rule) so output is deterministic and
golden-testable. Exit status: 0 when clean, 1 when any rule fired, 2 on
usage errors. --json swaps the human format for one machine-readable
document on stdout (same exit-status contract).

    usage: run_lints.py [--root DIR] [--rules name,name] [--list] [--json]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import lint_rules  # noqa: E402
from lint_rules import base  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root", default=None,
        help="directory to scan (default: the repository root)")
    parser.add_argument(
        "--rules", default=None,
        help="comma-separated rule names to run (default: all)")
    parser.add_argument(
        "--list", action="store_true", help="list rules and exit")
    parser.add_argument(
        "--json", action="store_true",
        help="emit one machine-readable JSON document instead of lines")
    args = parser.parse_args(argv)

    rules = lint_rules.ALL_RULES
    if args.rules is not None:
        wanted = [name.strip() for name in args.rules.split(",") if name.strip()]
        by_name = {rule.NAME: rule for rule in rules}
        unknown = [name for name in wanted if name not in by_name]
        if unknown:
            known = ", ".join(sorted(by_name))
            print(f"unknown rule(s): {', '.join(unknown)} (known: {known})",
                  file=sys.stderr)
            return 2
        rules = [by_name[name] for name in wanted]

    if args.list:
        for rule in rules:
            print(f"{rule.NAME}: {rule.DESCRIPTION}")
        return 0

    root = pathlib.Path(args.root) if args.root else \
        pathlib.Path(__file__).resolve().parents[2]
    if not root.is_dir():
        print(f"not a directory: {root}", file=sys.stderr)
        return 2

    tree = base.SourceTree(root)
    diagnostics = []
    for rule in rules:
        diagnostics.extend(rule.check(tree))
    diagnostics.sort(key=lambda d: (d.path, d.line, d.rule, d.message))

    if args.json:
        payload = base.diagnostics_to_json(
            "lint", diagnostics, rules=[rule.NAME for rule in rules],
            files_scanned=len(tree.files))
        json.dump(payload, sys.stdout, indent=2)
        print()
        return 1 if diagnostics else 0

    for diag in diagnostics:
        print(diag.format())
    names = ", ".join(rule.NAME for rule in rules)
    if diagnostics:
        print(f"lint: {len(diagnostics)} issue(s) found "
              f"({len(tree.files)} files scanned; rules: {names})")
        return 1
    print(f"lint: clean ({len(tree.files)} files scanned; rules: {names})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
