#!/usr/bin/env python3
"""Tests for the lint framework (scripts/lint/) and the compiler-enforced
analysis tier.

Three layers:
  - fixture tests: known-bad snippets fed to each rule, asserting exact
    file:line diagnostics and a nonzero driver exit;
  - a golden test: full driver output over the bad fixture tree must match
    scripts/lint/tests/golden/bad_fixture.txt byte for byte;
  - analysis-tier probes: a deliberately discarded Status must fail to
    compile under -Werror=unused-result, and (when clang++ is available) a
    deliberate NG_GUARDED_BY violation must fail under
    -Werror=thread-safety. These prove the check.sh stages turn red on the
    exact defect classes they exist to catch.

Run directly (python3 scripts/lint/tests/test_lints.py) or via ctest
(registered as lint_framework in tests/CMakeLists.txt).
"""

import pathlib
import shutil
import subprocess
import sys
import tempfile
import unittest

TESTS_DIR = pathlib.Path(__file__).resolve().parent
LINT_DIR = TESTS_DIR.parent
REPO_ROOT = LINT_DIR.parents[1]
DRIVER = LINT_DIR / "run_lints.py"
FIXTURES = TESTS_DIR / "fixtures"
GOLDEN = TESTS_DIR / "golden"


def run_driver(*args):
    return subprocess.run(
        [sys.executable, str(DRIVER), *args],
        capture_output=True, text=True, check=False)


def compile_snippet(compiler, source, *flags):
    """Syntax-only compile of `source` against the real src/ tree."""
    with tempfile.TemporaryDirectory() as tmp:
        path = pathlib.Path(tmp) / "snippet.cpp"
        path.write_text(source, encoding="utf-8")
        return subprocess.run(
            [compiler, "-std=c++20", "-fsyntax-only",
             f"-I{REPO_ROOT / 'src'}", *flags, str(path)],
            capture_output=True, text=True, check=False)


class DriverTest(unittest.TestCase):
    def test_bad_fixture_matches_golden_and_exits_nonzero(self):
        result = run_driver("--root", str(FIXTURES / "bad"))
        self.assertEqual(result.returncode, 1)
        golden = (GOLDEN / "bad_fixture.txt").read_text(encoding="utf-8")
        self.assertEqual(result.stdout, golden)

    def test_clean_fixture_passes(self):
        result = run_driver("--root", str(FIXTURES / "clean"))
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("lint: clean", result.stdout)

    def test_real_tree_is_clean(self):
        result = run_driver("--root", str(REPO_ROOT))
        self.assertEqual(result.returncode, 0, result.stdout)

    def test_rule_filter_runs_only_named_rules(self):
        result = run_driver("--root", str(FIXTURES / "bad"),
                            "--rules", "determinism")
        self.assertEqual(result.returncode, 1)
        self.assertIn("[determinism]", result.stdout)
        self.assertNotIn("[atomics]", result.stdout)

    def test_unknown_rule_is_usage_error(self):
        result = run_driver("--rules", "no-such-rule")
        self.assertEqual(result.returncode, 2)
        self.assertIn("unknown rule", result.stderr)

    def test_list_names_all_rules(self):
        result = run_driver("--list")
        self.assertEqual(result.returncode, 0)
        for name in ("omp-confinement", "svc-confinement", "io-confinement",
                     "determinism", "atomics", "include-hygiene",
                     "model-confinement", "obs-confinement"):
            self.assertIn(name, result.stdout)


class RuleDiagnosticsTest(unittest.TestCase):
    """Exact file:line assertions per rule over the bad fixture tree."""

    @classmethod
    def setUpClass(cls):
        cls.out = run_driver("--root", str(FIXTURES / "bad")).stdout

    def test_determinism_flags_random_device_in_src_core(self):
        self.assertIn(
            "src/core/bad_rng.cpp:8: [determinism] nondeterministic "
            "construct std::random_device", self.out)

    def test_determinism_flags_wall_clock_seed(self):
        self.assertIn("src/core/bad_rng.cpp:12: [determinism]", self.out)
        self.assertIn("src/core/bad_rng.cpp:14: [determinism]", self.out)

    def test_omp_confinement_covers_cc_extension(self):
        self.assertIn(
            "src/core/bad_omp.cc:9: [omp-confinement] raw '#pragma omp'",
            self.out)

    def test_omp_confinement_flags_thread_and_async_spawns(self):
        self.assertIn("src/core/bad_omp.cc:15: [omp-confinement]", self.out)
        self.assertIn("src/core/bad_omp.cc:16: [omp-confinement]", self.out)

    def test_svc_confinement_flags_each_raw_syscall(self):
        for line in (7, 8, 9):  # socket(), accept(), fork()
            self.assertIn(
                f"src/core/bad_socket.cpp:{line}: [svc-confinement] raw "
                "socket/process syscall outside src/svc/", self.out)

    def test_svc_confinement_ignores_wrapper_names_and_comments(self):
        # The clean fixture calls accept_with_timeout()/socketpair-like
        # helpers and mentions socket( in a comment; none may fire.
        result = run_driver("--root", str(FIXTURES / "clean"),
                            "--rules", "svc-confinement")
        self.assertEqual(result.returncode, 0, result.stdout)

    def test_io_confinement_flags_each_raw_open(self):
        # <fstream> include, std::fopen, std::ofstream, ::open syscall.
        for line in (3, 7, 8, 9):
            self.assertIn(
                f"src/core/bad_file_io.cpp:{line}: [io-confinement] raw "
                "file I/O outside src/io/ and src/svc/", self.out)

    def test_io_confinement_ignores_wrappers_and_comments(self):
        # The clean fixture opens files via write_text_file_atomic(), calls
        # a my_fopen_counter() lookalike, and says "fopen(" in a comment;
        # none may fire.
        result = run_driver("--root", str(FIXTURES / "clean"),
                            "--rules", "io-confinement")
        self.assertEqual(result.returncode, 0, result.stdout)

    def test_model_confinement_flags_each_direct_generator_call(self):
        for line in (6, 7, 8, 9):  # null graph, lfr, directed, chung-lu
            self.assertIn(
                f"src/analysis/bad_model_call.cpp:{line}: "
                "[model-confinement] direct generator call outside the "
                "model layer", self.out)

    def test_model_confinement_ignores_registry_door_and_lookalikes(self):
        # The clean fixture dispatches via model::run_model, calls a
        # my_generate_lfr_cached() lookalike, and mentions a banned name in
        # a string literal; none may fire.
        result = run_driver("--root", str(FIXTURES / "clean"),
                            "--rules", "model-confinement")
        self.assertEqual(result.returncode, 0, result.stdout)

    def test_obs_confinement_flags_include_emit_and_scope(self):
        # The event_log.hpp include, the emit_event call, and the RAII
        # phase scope in a hot kernel dir.
        for line in (1, 6, 7):
            self.assertIn(
                f"src/gen/bad_event_emit.cpp:{line}: [obs-confinement] "
                "event emission in a hot kernel dir", self.out)

    def test_obs_confinement_allows_context_passthrough(self):
        # Carrying an ObsContext (obs_context.hpp) through a kernel and
        # mentioning emit_event( in comments/strings must not fire.
        result = run_driver("--root", str(FIXTURES / "clean"),
                            "--rules", "obs-confinement")
        self.assertEqual(result.returncode, 0, result.stdout)

    def test_atomics_flags_volatile(self):
        self.assertIn(
            "src/ds/bad_atomics.hpp:6: [atomics] 'volatile'", self.out)

    def test_atomics_flags_unjustified_relaxed(self):
        self.assertIn(
            "src/ds/bad_atomics.hpp:12: [atomics] memory_order_relaxed "
            "without a 'relaxed:' justification", self.out)

    def test_include_hygiene_flags_missing_pragma_once(self):
        self.assertIn(
            "src/obs/bad_include.hpp:1: [include-hygiene] header does not "
            "open with '#pragma once'", self.out)

    def test_include_hygiene_flags_bracketed_and_relative_includes(self):
        self.assertIn("src/obs/bad_include.hpp:5: [include-hygiene]",
                      self.out)
        self.assertIn("src/obs/bad_include.hpp:6: [include-hygiene]",
                      self.out)


DISCARDED_STATUS = """
#include "robustness/status.hpp"
using nullgraph::Status;
using nullgraph::StatusCode;
Status might_fail() { return Status(StatusCode::kIoError, "boom"); }
void caller() { might_fail(); }  // discard -> must not compile
"""

HANDLED_STATUS = """
#include "robustness/status.hpp"
using nullgraph::Status;
using nullgraph::StatusCode;
Status might_fail() { return Status(StatusCode::kIoError, "boom"); }
int caller() { return might_fail().ok() ? 0 : 1; }
"""

GUARDED_BY_VIOLATION = """
#include "util/thread_annotations.hpp"
class Tally {
 public:
  void bump_unlocked() { total_ += 1; }  // no lock -> analysis error
 private:
  nullgraph::Mutex mutex_;
  long total_ NG_GUARDED_BY(mutex_) = 0;
};
"""

GUARDED_BY_CLEAN = """
#include "util/thread_annotations.hpp"
class Tally {
 public:
  void bump() {
    nullgraph::MutexLock lock(mutex_);
    total_ += 1;
  }
 private:
  nullgraph::Mutex mutex_;
  long total_ NG_GUARDED_BY(mutex_) = 0;
};
"""


class AnalysisTierTest(unittest.TestCase):
    """The compiler stages of check.sh turn red on their defect classes."""

    @classmethod
    def setUpClass(cls):
        cls.cxx = shutil.which("c++") or shutil.which("g++")
        cls.clangxx = shutil.which("clang++")

    def test_discarded_status_fails_under_unused_result(self):
        self.assertIsNotNone(self.cxx, "no C++ compiler on PATH")
        result = compile_snippet(self.cxx, DISCARDED_STATUS,
                                 "-Werror=unused-result")
        self.assertNotEqual(result.returncode, 0)
        self.assertIn("unused-result", result.stderr)

    def test_handled_status_compiles_under_unused_result(self):
        self.assertIsNotNone(self.cxx, "no C++ compiler on PATH")
        result = compile_snippet(self.cxx, HANDLED_STATUS,
                                 "-Werror=unused-result")
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_guarded_by_violation_fails_under_clang_thread_safety(self):
        if self.clangxx is None:
            self.skipTest("clang++ not on PATH (thread-safety analysis is "
                          "Clang-only; check.sh gates this stage the same way)")
        result = compile_snippet(self.clangxx, GUARDED_BY_VIOLATION,
                                 "-Wthread-safety", "-Werror=thread-safety")
        self.assertNotEqual(result.returncode, 0)
        self.assertIn("thread-safety", result.stderr)

    def test_locked_access_compiles_under_clang_thread_safety(self):
        if self.clangxx is None:
            self.skipTest("clang++ not on PATH")
        result = compile_snippet(self.clangxx, GUARDED_BY_CLEAN,
                                 "-Wthread-safety", "-Werror=thread-safety")
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_annotations_are_noops_on_gcc(self):
        self.assertIsNotNone(self.cxx, "no C++ compiler on PATH")
        result = compile_snippet(self.cxx, GUARDED_BY_CLEAN, "-Wall",
                                 "-Werror")
        self.assertEqual(result.returncode, 0, result.stderr)


class LexerTest(unittest.TestCase):
    """Unit tests for checklib's comment/string stripper — in particular
    the raw-string opener decision: an identifier merely ENDING in R
    before a string literal is not a raw string, while every real
    encoding-prefix form (R, u8R, uR, UR, LR) is."""

    @classmethod
    def setUpClass(cls):
        sys.path.insert(0, str(LINT_DIR.parent))
        from checklib import strip_comments_and_strings
        cls.strip = staticmethod(strip_comments_and_strings)

    def test_identifier_ending_in_r_is_not_a_raw_string(self):
        # FOUR"..." (macro concatenation) used to open raw-string mode and
        # corrupt the rest of the file: the closing )" delimiter never
        # appears, so everything after — here a real fopen call — stayed
        # "inside the string" and vanished from the stripped text.
        src = 'auto s = FOUR"abc";\nstd::fopen("x", "r");\n'
        out = self.strip(src)
        self.assertIn("FOUR", out)
        self.assertIn("fopen", out)
        self.assertNotIn("abc", out)

    def test_single_r_macro_is_not_a_raw_string(self):
        out = self.strip('auto s = BAR"(not raw)";\nint after = 1;\n')
        self.assertIn("after", out)
        self.assertNotIn("not raw", out)

    def test_plain_raw_string_contents_are_blanked(self):
        out = self.strip('auto s = R"(fopen("x"))";\nint after = 1;\n')
        self.assertNotIn("fopen", out)
        self.assertIn("after", out)

    def test_encoding_prefixed_raw_strings_are_recognized(self):
        for prefix in ("u8", "u", "U", "L"):
            src = f'auto s = {prefix}R"(socket(1))";\nint after = 1;\n'
            out = self.strip(src)
            self.assertNotIn("socket", out, f"prefix {prefix}R leaked")
            self.assertIn("after", out, f"prefix {prefix}R ate the file")

    def test_delimited_raw_string(self):
        out = self.strip('auto s = R"ng(fork() )" )ng";\nint after = 1;\n')
        self.assertNotIn("fork", out)
        self.assertIn("after", out)

    def test_line_numbers_preserved_through_raw_strings(self):
        src = 'int a;\nauto s = R"(x\ny\nz)";\nint b;\n'
        out = self.strip(src)
        self.assertEqual(out.count("\n"), src.count("\n"))
        self.assertEqual(out.splitlines()[4].strip(), "int b;")

    def test_line_numbers_preserved_through_block_comments(self):
        src = "int a;\n/* one\ntwo */ int b;\n"
        out = self.strip(src)
        self.assertEqual(out.count("\n"), src.count("\n"))
        self.assertIn("int b;", out.splitlines()[2])


if __name__ == "__main__":
    unittest.main(verbosity=2)
