// Fixture: direct generator pipeline calls outside the model layer.
#include "core/null_model.hpp"
#include "lfr/lfr.hpp"

void bypass_the_registry() {
  auto graph = generate_null_graph(dist, config);       // line 6: banned
  auto layers = generate_lfr(params);                   // line 7: banned
  auto arcs = generate_directed_null_graph(ddist, 1, 5);  // line 8: banned
  auto cl = chung_lu_multigraph(dist);                  // line 9: banned
}
