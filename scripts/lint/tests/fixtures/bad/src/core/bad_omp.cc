// Fixture: raw parallelism outside src/exec/, in a .cc file — the old
// shell grep (*.cpp/*.hpp only) missed this extension entirely.
#include <future>
#include <thread>
#include <vector>

void raw_parallel_sum(const std::vector<double>& v, double* out) {
  double sum = 0;
#pragma omp parallel for reduction(+ : sum)
  for (long i = 0; i < static_cast<long>(v.size()); ++i) sum += v[i];
  *out = sum;
}

void raw_spawns() {
  std::thread worker([] {});
  auto future = std::async([] { return 1; });
  worker.join();
  future.get();
}
