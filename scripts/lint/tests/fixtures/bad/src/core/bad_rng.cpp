// Fixture: every way the determinism rule should fire in library code.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

unsigned nondeterministic_seed() {
  std::random_device device;            // entropy source
  unsigned seed = device();
  seed ^= static_cast<unsigned>(rand());           // libc generator
  srand(42);                                       // libc seeding
  seed ^= static_cast<unsigned>(time(nullptr));    // wall-clock seed
  seed ^= static_cast<unsigned>(
      std::chrono::system_clock::now().time_since_epoch().count());
  return seed;
}
