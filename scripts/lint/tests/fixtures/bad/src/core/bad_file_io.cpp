// Fixture: raw file I/O outside src/io/ and src/svc/ must be flagged.
#include <cstdio>
#include <fstream>

int escape_the_io_layer(const char* path) {
  // "fopen(" in a comment must NOT be flagged (comments are stripped).
  std::FILE* f = std::fopen(path, "w");
  std::ofstream out(path);
  const int fd = ::open(path, 0);
  return f != nullptr && out.good() ? fd : -1;
}
