// Fixture: raw socket/process syscalls outside src/svc/ must be flagged.
#include <sys/socket.h>
#include <unistd.h>

int escape_the_service_layer() {
  // "socket(" in a comment must NOT be flagged (comments are stripped).
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  const int conn = accept(fd, nullptr, nullptr);
  if (fork() == 0) return conn;
  return fd;
}
