#pragma once
// Fixture: atomics-discipline violations.
#include <atomic>

struct BadAtomics {
  volatile int spin_flag = 0;  // volatile is not synchronization

  std::atomic<int> counter{0};

  void bump() {
    // No justification comment anywhere near this relaxed site.
    counter.fetch_add(1, std::memory_order_relaxed);
  }
};
