#include "obs/event_log.hpp"

namespace nullgraph {
void hot_kernel(const obs::ObsContext& obs, int n) {
  for (int i = 0; i < n; ++i) {
    obs::emit_event(obs, obs::EventKind::kShardCommit, "inner");
    obs::PhaseEventScope scope(obs, "per-element");
  }
}
}  // namespace nullgraph
