// Fixture: include-hygiene violations — no '#pragma once' opener, a
// bracketed project include, '../' traversal, and <omp.h> outside its
// sanctioned homes.
#include <omp.h>
#include <ds/edge.hpp>
#include "../core/rewire.hpp"

inline int bad_include_marker() { return omp_get_max_threads(); }
