#pragma once
// Fixture: a file every rule should pass — justified relaxed atomics,
// quoted project include path style, no banned constructs. Mentions of
// #pragma omp, std::thread, rand() and volatile in comments (like this
// one) must NOT fire: rules match comment-stripped code.
#include <atomic>
#include <cstdint>

struct GoodAtomics {
  std::atomic<std::uint64_t> hits{0};

  void bump() {
    // relaxed: statistics counter, only the eventual sum is read.
    hits.fetch_add(1, std::memory_order_relaxed);
  }

  const char* describe() const {
    return "the string \"#pragma omp parallel\" and 'volatile' stay inert";
  }
};
