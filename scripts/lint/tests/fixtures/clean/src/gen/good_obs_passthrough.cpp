// A kernel may CARRY an ObsContext (forward-declaration-only header) and
// mention emit_event( or EventLog in prose/comments without tripping the
// rule; only real emission API use in a hot dir fires.
#include "obs/obs_context.hpp"

namespace nullgraph {
void kernel(const obs::ObsContext& obs, int n) {
  const char* note = "emit_event( stays upstairs";
  (void)note;
  (void)obs;
  (void)n;
}
}  // namespace nullgraph
