// Fixture: svc wrapper calls (name + underscore suffix) must not trip the
// svc-confinement rule — only bare syscall names do.
int use_the_wrappers(int listen_fd) {
  extern int accept_with_timeout(int, int);
  extern int socketpair_like_helper(int);
  return accept_with_timeout(listen_fd, 100) + socketpair_like_helper(0);
}
