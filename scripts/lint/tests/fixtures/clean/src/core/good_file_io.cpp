// Fixture: io-layer wrappers and lookalike names must NOT trip
// io-confinement ("fopen(" here in prose is stripped before matching).
#include "io/graph_io.hpp"

int through_the_io_layer(const char* path) {
  // Wrapper calls and suffixed identifiers: none of these are raw I/O.
  const auto status = nullgraph::write_text_file_atomic(path, "0 1\n");
  const bool reopened = my_fopen_counter(path) > 0;
  return status.ok() && reopened ? 0 : 1;
}
