// Fixture: an unsanctioned directory that stays clean — the registry door,
// wrapper lookalikes, and prose about generate_null_graph( must not fire.
#include "model/driver.hpp"

void dispatch_properly() {
  auto run = nullgraph::model::run_model(spec, ctx);  // the sanctioned door
  auto cached = my_generate_lfr_cached(params);       // wrapper lookalike
  log("generate_null_graph( is banned here");         // string literal
}
