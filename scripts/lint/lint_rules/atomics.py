"""Atomics-discipline rule.

Two checks over every scanned tree:

  - ``volatile`` is banned outright: it is not a synchronization primitive,
    and every historical use was either a data race hiding from the
    compiler or an optimization barrier better expressed another way.

  - every ``std::memory_order_relaxed`` site must carry a justification: a
    comment containing ``relaxed:`` on the same line or within the
    preceding JUSTIFICATION_WINDOW raw lines (one comment may cover a
    cluster of adjacent sites), or the file must be listed in
    scripts/lint/relaxed_allowlist.txt. Relaxed ordering is correct
    surprisingly rarely; the comment forces the author to say *why* no
    ordering is needed, and gives the reviewer something to refute.

Stronger orderings (acquire/release/seq_cst) need no justification — they
are the safe default.
"""

import re

from . import base

NAME = "atomics"
DESCRIPTION = "no volatile; every memory_order_relaxed needs a 'relaxed:' justification"

#: How many raw lines above a relaxed site may hold its justification.
JUSTIFICATION_WINDOW = 10

#: Repo-relative allowlist file: paths (one per line, '#' comments) whose
#: relaxed sites are exempt, e.g. vendored code.
ALLOWLIST_FILE = "scripts/lint/relaxed_allowlist.txt"

_VOLATILE = re.compile(r"\bvolatile\b")
_RELAXED = re.compile(r"\bmemory_order_relaxed\b")
_JUSTIFIED = re.compile(r"relaxed:")


def _load_allowlist(tree: base.SourceTree):
    path = tree.root / ALLOWLIST_FILE
    if not path.is_file():
        return set()
    entries = set()
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.split("#", 1)[0].strip()
        if line:
            entries.add(line)
    return entries


def check(tree: base.SourceTree):
    allowlist = _load_allowlist(tree)
    diags = []
    for f in tree.files:
        for lineno, line in enumerate(f.code_lines, start=1):
            if _VOLATILE.search(line):
                diags.append(base.Diagnostic(
                    f.path, lineno, NAME,
                    "'volatile' is not a synchronization primitive — use "
                    "std::atomic (or restructure the optimization barrier)"))
            if _RELAXED.search(line) and f.path not in allowlist:
                lo = max(0, lineno - 1 - JUSTIFICATION_WINDOW)
                window = f.raw_lines[lo:lineno]
                if not any(_JUSTIFIED.search(raw) for raw in window):
                    diags.append(base.Diagnostic(
                        f.path, lineno, NAME,
                        "memory_order_relaxed without a 'relaxed:' "
                        "justification comment within the preceding "
                        f"{JUSTIFICATION_WINDOW} lines (or allowlist the "
                        f"file in {ALLOWLIST_FILE})"))
    return diags
