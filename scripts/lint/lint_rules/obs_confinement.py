"""Structured-event emission confinement.

Structured events (obs/event_log.hpp) record the COLD control-flow edges
of a run — phase boundaries, shard commits, governance verdicts, job
lifecycle. The emit path formats a JSON line and serializes on a mutex for
the fwrite: microseconds, invisible at phase granularity, catastrophic
inside a per-edge or per-pair inner loop. This rule keeps the emission API
(``emit_event``, ``PhaseEventScope``, ``EventLog``, and including
``obs/event_log.hpp`` at all) out of the hot kernel directories. Kernels
carry their ``ObsContext`` through untouched (obs_context.hpp is forward-
declaration-only and stays legal); the orchestration layers above them —
core, model, svc, the CLI — own the emission sites.
"""

import re

from . import base

NAME = "obs-confinement"
DESCRIPTION = ("structured-event emission (obs/event_log.hpp) confined to "
               "orchestration layers, banned in hot kernel dirs")

#: Per-element kernel layers: nothing here may format or emit events.
HOT_DIRS = ("src/gen/", "src/skip/", "src/permute/", "src/prob/",
            "src/ds/", "src/exec/", "src/util/")

_EMISSION = re.compile(
    r"(?<![A-Za-z0-9_])(?:obs::)?(?:emit_event\s*\(|PhaseEventScope\b|"
    r"EventLog\b)")
_INCLUDE = re.compile(r'#\s*include\s*"obs/event_log\.hpp"')

_MESSAGE = ("event emission in a hot kernel dir — structured events are "
            "per-phase/per-shard, never per-element; move the emit to the "
            "orchestrating layer (core/model/svc) and pass the ObsContext "
            "through untouched")


def check(tree: base.SourceTree):
    diags = []
    for f in tree.files:
        if not f.path.startswith(HOT_DIRS):
            continue
        for lineno, line in enumerate(f.code_lines, start=1):
            if _EMISSION.search(line):
                diags.append(base.Diagnostic(f.path, lineno, NAME, _MESSAGE))
        # The include path lives inside a string literal, which the code
        # view blanks — match it on the raw line, include directives only.
        for lineno, line in enumerate(f.raw_lines, start=1):
            if _INCLUDE.search(line):
                diags.append(base.Diagnostic(f.path, lineno, NAME, _MESSAGE))
    diags.sort(key=lambda d: (d.path, d.line))
    return diags
