"""Rule registry for the nullgraph lint driver.

A rule is a module exposing:
    NAME: str          stable kebab-case identifier (used in output and --rules)
    DESCRIPTION: str   one-liner for --list
    check(tree) -> list[base.Diagnostic]

To add a rule: create a module in this package, implement the three symbols,
and append it to ALL_RULES below (order = output grouping order). See
DESIGN.md section 8 for the policy each existing rule encodes.
"""

from . import (atomics, determinism, include_hygiene, io_confinement,
               model_confinement, obs_confinement, omp_confinement,
               svc_confinement)

ALL_RULES = [omp_confinement, svc_confinement, io_confinement, determinism,
             atomics, include_hygiene, model_confinement, obs_confinement]
