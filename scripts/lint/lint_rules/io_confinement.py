"""File-I/O confinement rule.

Raw file-handle acquisition — ``fopen``/``freopen``/``fdopen``, the
``::open``/``::creat`` syscalls, and ``std::[io]fstream`` construction (or
including ``<fstream>``) — is allowed only inside src/io/ and src/svc/.
Everything else opens files through the io layer (graph_io, checkpoint,
spill), whose writers share one crash-consistency discipline: write to a
temp file, flush, fsync, rename. A stray direct ``fopen`` elsewhere is how
torn-output bugs come back.

Scope: src/ and tools/ only. Tests, benches, and examples deliberately
bypass the io layer (they truncate and bit-flip files to prove the readers
reject the damage), so confining them would force the fixtures through the
very wrappers under test.

Allowlisted files sit BELOW io in the layer DAG and cannot call up into it
without creating a cycle; each carries a comment at its open site saying
so, and each writes only non-durable diagnostics (a trace stream, a
/proc/self/status read) where torn output is acceptable.
"""

import re

from . import base

NAME = "io-confinement"
DESCRIPTION = (
    "raw fopen/::open/fstream file access confined to src/io/ and src/svc/"
)

SANCTIONED_DIRS = ("src/io/", "src/svc/")
SCANNED_DIRS = ("src/", "tools/")

#: path -> reason (kept next to the rule so the exemption is auditable).
ALLOWLIST = {
    "src/obs/trace.cpp":
        "obs sits below io (would cycle); trace streams are diagnostics",
    "src/obs/process_stats.cpp":
        "obs sits below io (would cycle); reads /proc/self/status only",
    "src/obs/event_log.cpp":
        "obs sits below io (would cycle); JSONL is append-per-line by "
        "design (a crash keeps a valid prefix), not tmp+rename",
    "src/obs/prometheus.cpp":
        "obs sits below io (would cycle); snapshot writes implement their "
        "own tmp+rename to stay atomic for scrapers",
    "src/obs/flight_recorder.cpp":
        "obs sits below io (would cycle); dump() must stay async-signal-"
        "safe, so it uses raw open/write/fsync/rename directly",
}

_RAW_IO = re.compile(
    r"(?<![A-Za-z0-9_])(?:std::)?(?:fopen|freopen|fdopen)\s*\(|"
    r"(?<![A-Za-z0-9_])::(?:open|creat)\s*\(|"
    r"(?<![A-Za-z0-9_])(?:std::)?(?:[io]?fstream)(?![A-Za-z0-9_])|"
    r"<fstream>")


def check(tree: base.SourceTree):
    diags = []
    for f in tree.files:
        if not f.path.startswith(SCANNED_DIRS):
            continue
        if f.in_dir(SANCTIONED_DIRS[0]) or f.in_dir(SANCTIONED_DIRS[1]):
            continue
        if f.path in ALLOWLIST:
            continue
        for lineno, line in enumerate(f.code_lines, start=1):
            if _RAW_IO.search(line):
                diags.append(base.Diagnostic(
                    f.path, lineno, NAME,
                    "raw file I/O outside src/io/ and src/svc/ — open files "
                    "through the io layer (graph_io/checkpoint/spill) so "
                    "writes keep the write-fsync-rename commit discipline "
                    "(or allowlist the file with a reason)"))
    return diags
