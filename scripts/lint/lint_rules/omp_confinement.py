"""Parallelism-confinement rule.

Every parallel loop must go through the exec primitives so governance
polling, chunk-indexed RNG, and phase timing cannot be bypassed:

  - raw ``#pragma omp`` is allowed only inside src/exec/ (the primitives
    themselves);
  - ``std::thread`` / ``std::jthread`` / ``std::async`` spawns are likewise
    confined: OpenMP is the project's one threading runtime, and ad-hoc
    spawns would sit outside chunk governance and the TSan tier's suites.

Covers .h/.cc/.cxx in addition to .cpp/.hpp — the shell grep this rule
replaced only matched the latter two, so a renamed file escaped it.
"""

import re

from . import base

NAME = "omp-confinement"
DESCRIPTION = (
    "raw '#pragma omp' and std::thread/std::async spawns confined to src/exec/"
)

SANCTIONED_DIR = "src/exec/"

#: Files allowed to spawn non-OpenMP threads, with the reason on record.
THREAD_SPAWN_ALLOWLIST = {
    # Deliberately hammers the striped MetricsRegistry from raw std::threads
    # to prove stripe assignment works off the OpenMP pool.
    "tests/test_obs.cpp",
    # Serve scheduler worker slots: each slot thread runs a whole OpenMP
    # pipeline; the slots themselves cannot be OpenMP tasks because every
    # job needs its own master thread for the thread-local budget lease.
    "src/svc/scheduler.hpp",
    "src/svc/scheduler.cpp",
    # Runs the (blocking) daemon on a background thread so the client API
    # can be exercised against it in-process.
    "tests/test_svc.cpp",
    # MetricsExporter's periodic snapshot writer: a once-per-interval
    # sleeper that must keep running while OpenMP teams come and go.
    "src/obs/prometheus.hpp",
    "src/obs/prometheus.cpp",
}

_PRAGMA = re.compile(r"#\s*pragma\s+omp\b")
_SPAWN = re.compile(r"\bstd::(?:thread|jthread|async)\b")


def check(tree: base.SourceTree):
    diags = []
    for f in tree.files:
        if f.in_dir(SANCTIONED_DIR):
            continue
        for lineno, line in enumerate(f.code_lines, start=1):
            if _PRAGMA.search(line):
                diags.append(base.Diagnostic(
                    f.path, lineno, NAME,
                    "raw '#pragma omp' outside src/exec/ — use "
                    "exec::for_chunks/collect/reduce"))
            if _SPAWN.search(line) and f.path not in THREAD_SPAWN_ALLOWLIST:
                diags.append(base.Diagnostic(
                    f.path, lineno, NAME,
                    "std::thread/std::async spawn outside src/exec/ — OpenMP "
                    "via the exec primitives is the only sanctioned threading "
                    "runtime (or add this file to THREAD_SPAWN_ALLOWLIST with "
                    "a reason)"))
    return diags
