"""Determinism rule: no nondeterministically-seeded randomness.

The library's reproducibility contract (DESIGN.md section 6d) is that a
fixed seed yields bit-identical output at any thread count. That dies the
moment any code path draws entropy from the environment, so outside the
sanctioned files this rule bans:

  - libc randomness: rand(), srand(), rand_r(), drand48()/lrand48(),
    random();
  - std::random_device (hardware/OS entropy);
  - wall-clock reads usable as seeds: time(), gettimeofday(), clock(),
    std::chrono::system_clock / high_resolution_clock (the latter may alias
    the system clock; steady_clock is the sanctioned timing clock and is
    never banned).

All randomness flows from util/rng.hpp's explicitly-seeded xoshiro256**
(and the exec layer's chunk-indexed streams derived from it).
"""

import re

from . import base

NAME = "determinism"
DESCRIPTION = "no rand()/std::random_device/wall-clock seeding outside sanctioned files"

#: Files allowed to touch entropy / wall clocks. The RNG home itself is
#: sanctioned so a future "seed from OS entropy when the user passes
#: --seed=random" feature lands there and nowhere else.
SANCTIONED_FILES = {
    "src/util/rng.hpp",
    "src/util/rng.cpp",
}

_BANNED = [
    (re.compile(r"(?<![\w:])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"(?<![\w:])rand_r\s*\("), "rand_r()"),
    (re.compile(r"(?<![\w:])[dlm]rand48\s*\("), "*rand48()"),
    (re.compile(r"(?<![\w:])random\s*\("), "random()"),
    (re.compile(r"\bstd::random_device\b"), "std::random_device"),
    (re.compile(r"(?<![\w:])time\s*\("), "time()"),
    (re.compile(r"(?<![\w:])gettimeofday\s*\("), "gettimeofday()"),
    (re.compile(r"(?<![\w:])clock\s*\("), "clock()"),
    (re.compile(r"\bstd::chrono::system_clock\b"), "std::chrono::system_clock"),
    (re.compile(r"\bstd::chrono::high_resolution_clock\b"),
     "std::chrono::high_resolution_clock"),
]


def check(tree: base.SourceTree):
    diags = []
    for f in tree.files:
        if f.path in SANCTIONED_FILES:
            continue
        for lineno, line in enumerate(f.code_lines, start=1):
            for pattern, label in _BANNED:
                if pattern.search(line):
                    diags.append(base.Diagnostic(
                        f.path, lineno, NAME,
                        f"nondeterministic construct {label} — all randomness "
                        "must flow from util/rng.hpp seeds (steady_clock is "
                        "the sanctioned timing clock); if this file is a "
                        "legitimate entropy boundary, add it to "
                        "SANCTIONED_FILES with a reason"))
    return diags
