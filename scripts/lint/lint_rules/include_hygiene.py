"""Include-hygiene rule.

  - every header under src/ must open with ``#pragma once`` (first
    non-blank code line), so double inclusion cannot produce ODR surprises;
  - project headers must be included with quotes relative to src/
    (``#include "ds/edge.hpp"``), never with angle brackets and never via
    ``../`` traversal — both break the single -Isrc include root that
    compile_commands.json-based tooling (clang-tidy) relies on;
  - ``<omp.h>`` in src/ is confined to the threading homes (src/exec/ and
    the two util files that wrap thread introspection / per-thread RNG
    streams); everything else gets its parallelism through the exec
    primitives, keeping the OpenMP dependency swappable. Tests and benches
    may include it freely (thread-count setup).
"""

import re

from . import base

NAME = "include-hygiene"
DESCRIPTION = "#pragma once in headers; quoted project includes; <omp.h> confined"

#: src/ subdirectories that form the project include namespace.
PROJECT_INCLUDE_DIRS = (
    "analysis", "bipartite", "core", "directed", "ds", "exec", "gen", "io",
    "lfr", "obs", "permute", "prob", "robustness", "skip", "util",
)

#: src/ files allowed to include <omp.h> directly.
OMP_INCLUDE_ALLOWLIST = {
    "src/util/parallel.hpp",  # thread introspection wrappers
    "src/util/rng.cpp",       # RngPool sizes itself off omp_get_max_threads
}

_INCLUDE = re.compile(r'#\s*include\s*([<"])([^>"]+)[>"]')
_PRAGMA_ONCE = re.compile(r"#\s*pragma\s+once\b")


def check(tree: base.SourceTree):
    diags = []
    project_prefixes = tuple(d + "/" for d in PROJECT_INCLUDE_DIRS)
    for f in tree.files:
        if f.is_header() and f.in_dir("src/"):
            first_code = next(
                (line for line in f.code_lines if line.strip()), "")
            if not _PRAGMA_ONCE.search(first_code):
                diags.append(base.Diagnostic(
                    f.path, 1, NAME,
                    "header does not open with '#pragma once'"))
        for lineno, stripped in enumerate(f.code_lines, start=1):
            # The stripped line proves the directive is real (not inside a
            # comment); the raw line still holds the quoted path the
            # stripper blanked out.
            if not re.search(r"#\s*include", stripped):
                continue
            m = _INCLUDE.search(f.raw_lines[lineno - 1])
            if not m:
                continue
            bracket, target = m.group(1), m.group(2)
            if "../" in target:
                diags.append(base.Diagnostic(
                    f.path, lineno, NAME,
                    f"relative include '{target}' — include project headers "
                    "by their src/-rooted path"))
            if bracket == "<" and target.startswith(project_prefixes):
                diags.append(base.Diagnostic(
                    f.path, lineno, NAME,
                    f"project header <{target}> included with angle "
                    "brackets — use quotes"))
            if (target == "omp.h" and f.in_dir("src/")
                    and not f.in_dir("src/exec/")
                    and f.path not in OMP_INCLUDE_ALLOWLIST):
                diags.append(base.Diagnostic(
                    f.path, lineno, NAME,
                    "<omp.h> outside src/exec/ — use util/parallel.hpp "
                    "wrappers or the exec primitives (or allowlist with a "
                    "reason)"))
    return diags
