"""Model-dispatch confinement rule.

The generator pipeline entry points — ``generate_null_graph()``,
``generate_lfr()``, ``bipartite_null_graph()``, the Chung-Lu kernels, and
friends — are reachable from exactly one production door: the backend
registry (``model::run_model``). A front end (tools/, src/svc/, src/
anything above the model layer) calling a generator directly bypasses the
driver's capability validation, the sampling-space census, and the report's
``model`` block, which is precisely the drift the registry refactor
removed.

Sanctioned locations:
  * ``src/model/`` — the backends themselves;
  * the owning subsystems (``src/core``, ``src/gen``, ``src/directed``,
    ``src/bipartite``, ``src/lfr``) — definitions and internal layering;
  * ``tests/`` and ``bench/`` — they exercise kernels in isolation by
    design (the parity suite compares them against the registry path);
  * ``examples/`` — library-API demos, deliberately below the CLI surface.

The pattern requires the open parenthesis immediately after the name, so
declarations in prose, wrapper names like ``my_generate_lfr_cached(``, and
comments (stripped by the framework) never trip it.
"""

import re

from . import base

NAME = "model-confinement"
DESCRIPTION = (
    "generator pipeline entry points called only via the model registry"
)

SANCTIONED_DIRS = (
    "src/model/", "src/core/", "src/gen/", "src/directed/",
    "src/bipartite/", "src/lfr/", "tests/", "bench/", "examples/",
)

_ENTRY_POINT = re.compile(
    r"(?<![A-Za-z0-9_])(?:"
    r"generate_null_graph(?:_checked)?|generate_connected_null_graph|"
    r"generate_for_sequence|generate_directed_null_graph|"
    r"bipartite_null_graph|chung_lu_multigraph|erased_chung_lu|"
    r"bernoulli_chung_lu|generate_lfr|rmat_edges"
    r")\s*\(")


def check(tree: base.SourceTree):
    diags = []
    for f in tree.files:
        if any(f.in_dir(d) for d in SANCTIONED_DIRS):
            continue
        for lineno, line in enumerate(f.code_lines, start=1):
            if _ENTRY_POINT.search(line):
                diags.append(base.Diagnostic(
                    f.path, lineno, NAME,
                    "direct generator call outside the model layer — "
                    "dispatch through model::run_model so capability "
                    "validation, the sampling-space census, and the "
                    "report's model block apply"))
    return diags
