"""Service-syscall confinement rule.

Raw socket and process-control syscalls — ``socket()``, ``accept()``,
``accept4()``, ``fork()``, ``vfork()`` — are allowed only inside src/svc/
(in practice: wire.cpp, the one file that owns fd lifecycles). Everything
else goes through the svc wrappers (listen_unix / connect_unix /
accept_with_timeout / close_fd), so the defensive read/write contracts and
the daemon's fd accounting cannot be bypassed by a stray direct call.

The pattern requires the open parenthesis immediately after the name, so
project wrappers like ``accept_with_timeout(`` or ``socketpair_helper(``
never trip it; comments and string literals are stripped by the framework
before matching.
"""

import re

from . import base

NAME = "svc-confinement"
DESCRIPTION = (
    "raw socket()/accept()/fork() syscalls confined to src/svc/"
)

SANCTIONED_DIR = "src/svc/"

_SYSCALL = re.compile(r"(?<![A-Za-z0-9_])(?:socket|accept4?|v?fork)\s*\(")


def check(tree: base.SourceTree):
    diags = []
    for f in tree.files:
        if f.in_dir(SANCTIONED_DIR):
            continue
        for lineno, line in enumerate(f.code_lines, start=1):
            if _SYSCALL.search(line):
                diags.append(base.Diagnostic(
                    f.path, lineno, NAME,
                    "raw socket/process syscall outside src/svc/ — use the "
                    "svc wire wrappers (listen_unix/connect_unix/"
                    "accept_with_timeout/close_fd)"))
    return diags
