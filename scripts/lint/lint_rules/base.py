"""Shared infrastructure for lint rules: diagnostics, the scanned source
tree, and C++ comment/string stripping.

Rules match against *stripped* lines (comments and string-literal contents
blanked, line structure preserved) so prose about a banned construct never
trips a rule, while justification checks (the atomics rule) look at the
*raw* lines where the comments live.
"""

from __future__ import annotations

import dataclasses
import pathlib

#: Every C++ translation-unit / header extension the project uses or could
#: grow. The old shell lint only matched .cpp/.hpp; .h/.cc/.cxx are covered
#: so a renamed file cannot silently escape confinement.
CXX_EXTENSIONS = (".cpp", ".hpp", ".h", ".cc", ".cxx")

#: Top-level directories scanned relative to the repo root.
SOURCE_TREES = ("src", "tests", "bench", "examples", "tools")


@dataclasses.dataclass(frozen=True)
class Diagnostic:
    """One finding: a repo-relative path, 1-based line, rule name, message."""

    path: str
    line: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blank out comment bodies and string/char literal contents.

    Newlines are preserved (including inside block comments and raw
    strings) so line numbers in the stripped text match the original.
    Replaced characters become spaces.
    """
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line_comment | block_comment | string | char | raw_string
    raw_delim = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == "R" and nxt == '"':
                # Raw string literal: R"delim( ... )delim"
                close = text.find("(", i + 2)
                if close != -1:
                    raw_delim = ")" + text[i + 2 : close] + '"'
                    state = "raw_string"
                    out.append(" " * (close - i + 1))
                    i = close + 1
                    continue
            if c == '"':
                state = "string"
                out.append(c)
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(c)
                i += 1
                continue
            out.append(c)
            i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        elif state == "string":
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == '"':
                state = "code"
                out.append(c)
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        elif state == "char":
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == "'":
                state = "code"
                out.append(c)
                i += 1
            else:
                out.append(" ")
                i += 1
        elif state == "raw_string":
            if text.startswith(raw_delim, i):
                state = "code"
                out.append(" " * len(raw_delim))
                i += len(raw_delim)
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out)


class SourceFile:
    """One scanned file: repo-relative path plus raw and stripped lines."""

    def __init__(self, rel_path: str, text: str):
        self.path = rel_path
        self.raw_lines = text.splitlines()
        self.code_lines = strip_comments_and_strings(text).splitlines()

    def in_dir(self, prefix: str) -> bool:
        return self.path.startswith(prefix)

    def is_header(self) -> bool:
        return self.path.endswith((".hpp", ".h"))


class SourceTree:
    """All C++ files under the scanned trees of one root directory."""

    def __init__(self, root: pathlib.Path, trees=SOURCE_TREES):
        self.root = root
        self.files: list[SourceFile] = []
        for tree in trees:
            base = root / tree
            if not base.is_dir():
                continue
            for path in sorted(base.rglob("*")):
                if path.suffix in CXX_EXTENSIONS and path.is_file():
                    rel = path.relative_to(root).as_posix()
                    text = path.read_text(encoding="utf-8", errors="replace")
                    self.files.append(SourceFile(rel, text))
