"""Shared infrastructure for lint rules: diagnostics, the scanned source
tree, and C++ comment/string stripping.

Since the semantic analyzer (scripts/analyze/) landed, the implementation
lives in the shared ``scripts/checklib`` package — one Diagnostic shape,
one SourceTree, one C++ lexer for every Python static-check tool. This
module re-exports it under the names the lint rules have always used, so
rules keep importing ``from . import base`` and nothing else changes.

Rules match against *stripped* lines (comments and string-literal contents
blanked, line structure preserved) so prose about a banned construct never
trips a rule, while justification checks (the atomics rule) look at the
*raw* lines where the comments live.
"""

from __future__ import annotations

import pathlib
import sys

# scripts/ is the import root for the shared checklib package.
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[2]))

from checklib import (CXX_EXTENSIONS, SOURCE_TREES, Diagnostic,  # noqa: E402,F401
                      SourceFile, SourceTree, Token, diagnostics_to_json,
                      strip_comments_and_strings, tokenize)

__all__ = [
    "CXX_EXTENSIONS", "SOURCE_TREES", "Diagnostic", "SourceFile",
    "SourceTree", "Token", "diagnostics_to_json",
    "strip_comments_and_strings", "tokenize",
]
