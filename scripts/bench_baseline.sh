#!/usr/bin/env bash
# Capture (or refresh) the checked-in performance baselines.
#
# Runs the benchmark suites that anchor the paper's headline numbers —
# bench_fig5_endtoend (full generate pipeline) and bench_ablation_sampling
# (degree-sequence sampling ablation) — plus bench_spill (out-of-core
# shard-write overhead vs in-core, DESIGN.md §10) with google-benchmark's
# JSON emitter, and writes the results to bench/baselines/. check.sh diffs a
# fresh run against these snapshots (scripts/compare_reports.py --bench)
# as a NON-FATAL drift report: absolute times move with the host, so the
# comparison informs rather than gates.
#
# Usage: scripts/bench_baseline.sh [outdir]
#   BUILD_DIR=...          build tree holding bench/ binaries (default: build)
#   BENCH_MIN_TIME=...     --benchmark_min_time seconds (default: 0.05 —
#                          quick snapshots; raise for a quieter baseline)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}
OUT=${1:-bench/baselines}
MIN_TIME=${BENCH_MIN_TIME:-0.05}

mkdir -p "$OUT"

run_suite() {  # binary outfile
  local bin=$BUILD_DIR/bench/$1 out=$OUT/$2
  [[ -x "$bin" ]] || {
    echo "bench_baseline: $bin not built (configure with" >&2
    echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j)" >&2
    exit 1
  }
  echo "== $1 -> $out =="
  "$bin" --benchmark_min_time="$MIN_TIME" \
         --benchmark_out="$out" --benchmark_out_format=json
  python3 -m json.tool "$out" >/dev/null  # refuse to commit torn JSON
}

run_suite bench_fig5_endtoend BENCH_fig5.json
run_suite bench_ablation_sampling BENCH_sampling.json
run_suite bench_spill BENCH_spill.json
run_suite bench_backends BENCH_backends.json
run_suite bench_obs_overhead BENCH_obs.json

echo "bench_baseline: wrote $OUT/BENCH_fig5.json, $OUT/BENCH_sampling.json,"
echo "  $OUT/BENCH_spill.json, $OUT/BENCH_backends.json, and"
echo "  $OUT/BENCH_obs.json"
