#!/usr/bin/env bash
# Deterministic chaos drill for out-of-core generation (DESIGN.md §10).
#
# Four phases, every expectation exact:
#
#   1. memory pressure — a graph whose projected footprint exceeds
#      --max-memory-mb must DEGRADE to spill shards and exit 0 (never trip
#      kMemoryBudget), its merged output must be bit-identical to the
#      unconstrained in-core run, and the report must carry the
#      degradation event plus resident-memory gauges proving the bound.
#   2. SIGKILL mid-spill + resume — the generator is killed (kill -9)
#      between shard commits; the directory must hold only complete,
#      CRC-valid shards (fsck exits 21 on the missing tail, never crashes),
#      and `generate --resume <dir>` must finish the run to a
#      bit-identical output while reusing every surviving shard.
#   3. torn shard + fsck — a shard truncated mid-block and a shard with a
#      flipped byte must both be typed kShardCorrupt (exit 21);
#      `fsck --repair` must regenerate them in place and `fsck --deep`
#      must then prove the directory globally simple (exit 0).
#   4. write-fault injection — with --inject-spill-fail exhausting every
#      retry attempt the run must surface typed kIoError (exit 3), not
#      abort; with a single injected failure the bounded-backoff retry
#      must absorb it and exit 0.
#
# Used by scripts/check.sh as the spill_smoke tier; also runnable
# standalone: scripts/chaos_spill.sh [workdir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}
BIN=$BUILD_DIR/tools/nullgraph
WORK=${1:-$BUILD_DIR/chaos-spill}

[[ -x "$BIN" ]] || { echo "chaos_spill: $BIN not built" >&2; exit 1; }
rm -rf "$WORK"
mkdir -p "$WORK"

fail() { echo "chaos_spill: FAIL: $*" >&2; exit 1; }

# One graph for every phase; --swaps 0 because spill mode skips the swap
# chain (recorded as a degradation), so the in-core reference must too.
GRAPH=(--powerlaw --n 200000 --dmax 500 --seed 23 --swaps 0)

echo "== chaos_spill phase 0: in-core reference run =="
"$BIN" generate "${GRAPH[@]}" --out "$WORK/reference.txt" >/dev/null \
  || fail "reference run failed"
[[ -s "$WORK/reference.txt" ]] || fail "reference run wrote no output"

# ---------------------------------------------------------------- phase 1
echo "== chaos_spill phase 1: memory ceiling degrades to disk, exit 0 =="
"$BIN" generate "${GRAPH[@]}" --max-memory-mb 2 \
  --spill-dir "$WORK/spill-pressure" --out "$WORK/pressure.txt" \
  --report-json "$WORK/pressure_report.json" >/dev/null \
  || fail "memory-pressure run exited $? (must degrade, not trip)"
cmp -s "$WORK/reference.txt" "$WORK/pressure.txt" \
  || fail "spilled output diverged from the in-core reference"
python3 - "$WORK/pressure_report.json" <<'PY'
import json, sys
r = json.load(open(sys.argv[1]))
spill = r["spill"]
assert spill["spilled"] and spill["shard_count"] >= 2, spill
assert spill["shards_written"] == spill["shard_count"], spill
deg = {d["action"]: d for d in r["degradations"]}
assert deg["spill-to-disk"]["trigger"] == "kMemoryBudget", deg
gauges = {g["name"]: g["value"] for g in r["metrics"]["gauges"]}
assert gauges.get("mem.resident_kb", 0) > 0, gauges
assert gauges.get("mem.peak_resident_kb", 0) > 0, gauges
# The balance contract: no shard hoards the graph (<= 2x the fair share).
assert spill["max_shard_edges"] <= 2 * spill["edges_on_disk"] / spill["shard_count"], spill
PY
echo "   ok: degraded to $(ls "$WORK"/spill-pressure/shard-* | wc -l) shards, output bit-identical, memory gauges present"

# ---------------------------------------------------------------- phase 2
echo "== chaos_spill phase 2: SIGKILL between shard commits, resume =="
SPILL=$WORK/spill-kill
# The per-phase slow injection sleeps inside every shard generation, which
# holds the kill window open deterministically: shard files appear one by
# one, so polling for the second file guarantees the kill lands mid-run.
"$BIN" generate "${GRAPH[@]}" --force-spill --spill-dir "$SPILL" \
  --spill-shards 6 --inject-slow-ms 400 --out "$WORK/killed.txt" \
  >/dev/null 2>&1 &
VICTIM_PID=$!
for _ in $(seq 1 200); do
  [[ -f "$SPILL/shard-000001.ngsh" ]] && break
  sleep 0.05
done
[[ -f "$SPILL/shard-000001.ngsh" ]] || fail "no second shard ever committed"
kill -9 "$VICTIM_PID"
wait "$VICTIM_PID" 2>/dev/null || true

[[ -e "$WORK/killed.txt" ]] && fail "torn merged output delivered after SIGKILL"
compgen -G "$SPILL/*.tmp" >/dev/null && fail "SIGKILL left a temp file behind"
SURVIVORS=$(ls "$SPILL"/shard-*.ngsh | wc -l)
[[ "$SURVIVORS" -lt 6 ]] || fail "all shards present; the kill landed too late"

# Every survivor must be complete and CRC-valid; the missing tail makes
# the directory as a whole unhealthy (typed exit 21, never a crash).
rc=0; "$BIN" fsck --dir "$SPILL" >/dev/null 2>&1 || rc=$?
[[ "$rc" == 21 ]] || fail "fsck on a half-written directory exited $rc, want 21"

"$BIN" generate --resume "$SPILL" --out "$WORK/resumed.txt" \
  --report-json "$WORK/resume_report.json" >/dev/null \
  || fail "resume exited $?"
cmp -s "$WORK/reference.txt" "$WORK/resumed.txt" \
  || fail "resumed output diverged from the uninterrupted reference"
python3 - "$WORK/resume_report.json" "$SURVIVORS" <<'PY'
import json, sys
r = json.load(open(sys.argv[1]))
survivors = int(sys.argv[2])
spill = r["spill"]
assert spill["shards_reused"] == survivors, (spill, survivors)
assert spill["shards_reused"] + spill["shards_written"] == 6, spill
PY
echo "   ok: $SURVIVORS survivors reused, $((6 - SURVIVORS)) regenerated, output bit-identical"

# ---------------------------------------------------------------- phase 3
echo "== chaos_spill phase 3: torn + corrupt shards, fsck --repair --deep =="
# Tear one shard mid-block and flip a payload byte in another.
head -c 100 "$SPILL/shard-000002.ngsh" >"$SPILL/shard-000002.ngsh.torn"
mv "$SPILL/shard-000002.ngsh.torn" "$SPILL/shard-000002.ngsh"
python3 - "$SPILL/shard-000004.ngsh" <<'PY'
import sys
path = sys.argv[1]
data = bytearray(open(path, 'rb').read())
data[len(data) // 2] ^= 0x40
open(path, 'wb').write(data)
PY
rc=0; "$BIN" fsck --dir "$SPILL" >"$WORK/fsck_damage.txt" 2>&1 || rc=$?
[[ "$rc" == 21 ]] || fail "fsck on damaged shards exited $rc, want 21"
grep -q "CORRUPT" "$WORK/fsck_damage.txt" || fail "fsck did not name the corrupt shards"

"$BIN" fsck --dir "$SPILL" --repair --deep >/dev/null \
  || fail "fsck --repair could not heal the directory"
"$BIN" generate --resume "$SPILL" --out "$WORK/healed.txt" >/dev/null \
  || fail "post-repair resume failed"
cmp -s "$WORK/reference.txt" "$WORK/healed.txt" \
  || fail "repaired shards diverged from the reference"
echo "   ok: damage typed as 21, repaired in place, deep census clean"

# ---------------------------------------------------------------- phase 4
echo "== chaos_spill phase 4: spill write faults (retry, then typed kIoError) =="
# One injected failure: absorbed by the bounded-backoff retry, exit 0.
"$BIN" generate "${GRAPH[@]}" --force-spill --spill-dir "$WORK/spill-retry" \
  --inject-spill-fail 1 --out "$WORK/retried.txt" \
  --report-json "$WORK/retry_report.json" >/dev/null \
  || fail "a single transient write fault was not retried away (exit $?)"
cmp -s "$WORK/reference.txt" "$WORK/retried.txt" \
  || fail "retried run diverged from the reference"
python3 - "$WORK/retry_report.json" <<'PY'
import json, sys
r = json.load(open(sys.argv[1]))
c = {m["name"]: m["value"] for m in r["metrics"]["counters"]}
assert c.get("spill.write_retries") == 1, c
assert c.get("spill.write_failures", 0) == 0, c
PY

# Faults on every attempt: the typed kIoError surfaces as exit 3.
rc=0
"$BIN" generate "${GRAPH[@]}" --force-spill --spill-dir "$WORK/spill-fatal" \
  --inject-spill-fail 1000 --out "$WORK/fatal.txt" >/dev/null 2>&1 || rc=$?
[[ "$rc" == 3 ]] || fail "exhausted spill writes exited $rc, want typed 3 (kIoError)"
echo "   ok: one fault retried away, persistent faults typed kIoError"

echo "chaos_spill: all phases passed"
