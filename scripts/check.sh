#!/usr/bin/env bash
# Tier-1 verification: build + ctest in the default configuration, then
# again under AddressSanitizer + UndefinedBehaviorSanitizer (catches the
# memory and UB classes the typed-status guardrails cannot), then a
# ThreadSanitizer tier over the concurrency-critical suites (hash set,
# permutation, swap phase, governance — the cross-thread cancel/stop
# paths).
#
# Usage: scripts/check.sh [--skip-sanitizers]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)
SKIP_SAN=0
[[ "${1:-}" == "--skip-sanitizers" ]] && SKIP_SAN=1

echo "== lint: raw OpenMP pragmas confined to src/exec =="
# Every parallel loop must go through the exec primitives so governance
# polling, chunk-indexed RNG, and phase timing cannot be bypassed. Raw
# pragmas are allowed only inside src/exec/ (the primitives themselves).
RAW_OMP=$(grep -rn '#pragma omp' src tests bench examples tools \
  --include='*.cpp' --include='*.hpp' \
  | grep -v '^src/exec/' || true)
if [[ -n "$RAW_OMP" ]]; then
  echo "raw '#pragma omp' outside src/exec/ — use exec::for_chunks/collect/reduce:"
  echo "$RAW_OMP"
  exit 1
fi

echo "== tier 1: default build =="
cmake -B build -S . >/dev/null
cmake --build build -j"$JOBS"
ctest --test-dir build --output-on-failure -j"$JOBS"

echo "== telemetry smoke: --report-json / --trace-out =="
# End-to-end through the real binary: both artifacts must be valid JSON
# and a report must diff clean against itself (also exercises
# compare_reports.py's parsing of every section it knows about).
TELEM_DIR=build/telemetry-smoke
mkdir -p "$TELEM_DIR"
build/tools/nullgraph generate --powerlaw --n 5000 --dmax 100 --swaps 3 \
  --seed 9 --out "$TELEM_DIR/graph.txt" \
  --report-json "$TELEM_DIR/report.json" \
  --trace-out "$TELEM_DIR/trace.json"
python3 -m json.tool "$TELEM_DIR/report.json" >/dev/null
python3 -m json.tool "$TELEM_DIR/trace.json" >/dev/null
python3 scripts/compare_reports.py \
  "$TELEM_DIR/report.json" "$TELEM_DIR/report.json" >/dev/null

if [[ "$SKIP_SAN" == 1 ]]; then
  echo "== sanitizer pass skipped =="
  exit 0
fi

echo "== tier 1: ASan/UBSan build =="
cmake -B build-asan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DNULLGRAPH_SANITIZE="address;undefined" \
  -DNULLGRAPH_BUILD_BENCH=OFF \
  -DNULLGRAPH_BUILD_EXAMPLES=OFF >/dev/null
cmake --build build-asan -j"$JOBS"
ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=halt_on_error=1 \
  ctest --test-dir build-asan --output-on-failure -j"$JOBS"

echo "== tier 1: TSan build (concurrency suites) =="
# TSan is incompatible with ASan/UBSan, so it gets its own tree. Only the
# suites with real cross-thread traffic run here: everything else would
# triple the wall time for no additional interleaving coverage.
cmake -B build-tsan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DNULLGRAPH_SANITIZE=thread \
  -DNULLGRAPH_BUILD_BENCH=OFF \
  -DNULLGRAPH_BUILD_EXAMPLES=OFF >/dev/null
cmake --build build-tsan -j"$JOBS"
TSAN_OPTIONS=halt_on_error=1 OMP_NUM_THREADS=4 \
  ctest --test-dir build-tsan --output-on-failure -j"$JOBS" \
    -R 'ConcurrentHashSet|Permutation|DoubleEdgeSwap|Governance|StallWatchdog|RunGovernor|ForChunks|Collect|Reduce|ThreadSweep|EdgeSkip|PrefixSum'

echo "== all checks passed =="
