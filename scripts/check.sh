#!/usr/bin/env bash
# Tier-1 verification, ordered cheapest-first:
#
#   1. lint driver (scripts/lint/run_lints.py): OMP/thread confinement,
#      determinism (no unsanctioned RNG/wall-clock seeding), atomics
#      discipline (no volatile, justified relaxed), include hygiene.
#   2. static-analysis build: -Werror=unused-result so any discarded
#      Status/Result is a build error; when clang++ is on PATH the same
#      tree also compiles with -Werror=thread-safety, proving every
#      NG_GUARDED_BY contract. Compile-only — no tests run here.
#   2b. semantic analysis (scripts/analyze/run_analysis.py): cross-TU
#      call-graph proofs — signal handlers and the flight-recorder dump
#      path reach only async-signal-safe code, exec chunk callbacks never
#      block, RNG engines in chunk callbacks are chunk-seeded, and the
#      StatusCode enum / exit mapping / README table agree. Uses the
#      libclang frontend when installed, else the built-in parser (a
#      stderr notice says which) — the tier runs either way.
#   3. default build + ctest, telemetry smoke through the real binary,
#      the backend_smoke tier (every registered backend end-to-end with a
#      validated `model` report block), the
#      serve_smoke chaos drill (scripts/chaos_serve.sh), the
#      spill_smoke chaos drill (scripts/chaos_spill.sh), and a
#      non-fatal benchmark drift report against bench/baselines/.
#   4. sanitizers: ASan/UBSan full suite, then TSan over the
#      concurrency-critical suites.
#
# The lint and analysis stages are compile-only and cheap, so
# --skip-sanitizers leaves them ON; it only drops stage 4.
#
# Usage: scripts/check.sh [--skip-sanitizers] [--tidy]
#   --tidy  opt-in clang-tidy stage over compile_commands.json (the
#           committed .clang-tidy profile). Requires clang-tidy on PATH;
#           fails fast with a clear message when it is absent.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)
SKIP_SAN=0
RUN_TIDY=0
for arg in "$@"; do
  case "$arg" in
    --skip-sanitizers) SKIP_SAN=1 ;;
    --tidy) RUN_TIDY=1 ;;
    *) echo "usage: scripts/check.sh [--skip-sanitizers] [--tidy]" >&2
       exit 1 ;;
  esac
done

# Opt-in stages fail fast, before any build time is spent, when their
# toolchain is missing — not mid-run with a confusing cmake error.
# Distros ship LLVM tools under versioned names (clang-tidy-18) without a
# bare alias, so probe the versioned binaries too, newest first.
CLANG_TIDY=""
RUN_CLANG_TIDY=""
if [[ "$RUN_TIDY" == 1 ]]; then
  for cand in clang-tidy clang-tidy-{21,20,19,18,17,16,15,14}; do
    if command -v "$cand" >/dev/null 2>&1; then CLANG_TIDY="$cand"; break; fi
  done
  for cand in run-clang-tidy run-clang-tidy-{21,20,19,18,17,16,15,14}; do
    if command -v "$cand" >/dev/null 2>&1; then RUN_CLANG_TIDY="$cand"; break; fi
  done
  if [[ -z "$CLANG_TIDY" ]]; then
    echo "check.sh: --tidy requested but clang-tidy is not on PATH" >&2
    echo "(probed clang-tidy and clang-tidy-21..14)." >&2
    echo "Install clang-tidy (LLVM) or drop --tidy; every other stage runs" >&2
    echo "without it." >&2
    exit 1
  fi
fi

echo "== lint: scripts/lint/run_lints.py =="
python3 scripts/lint/run_lints.py

echo "== static analysis: nodiscard Status discipline (-Werror=unused-result) =="
if command -v clang++ >/dev/null 2>&1; then
  ANALYSIS_FLAGS=(-DCMAKE_CXX_COMPILER=clang++ -DNULLGRAPH_THREAD_SAFETY=ON)
  echo "   (clang++ found: thread-safety analysis -Werror=thread-safety enabled)"
else
  ANALYSIS_FLAGS=()
  echo "   (clang++ not on PATH: -Werror=thread-safety needs Clang, running"
  echo "    the nodiscard tier with the default compiler; annotations still"
  echo "    compile as no-ops)"
fi
cmake -B build-analysis -S . \
  -DNULLGRAPH_NODISCARD_ERRORS=ON \
  "${ANALYSIS_FLAGS[@]}" \
  -DNULLGRAPH_BUILD_BENCH=OFF \
  -DNULLGRAPH_BUILD_EXAMPLES=OFF >/dev/null
cmake --build build-analysis -j"$JOBS"

echo "== semantic analysis: call-graph contracts (scripts/analyze) =="
# Runs after the analysis build so build-analysis/compile_commands.json
# exists for the libclang frontend; when libclang is absent the driver
# prints a notice and proves the same contracts with its internal parser.
python3 scripts/analyze/run_analysis.py \
  --compile-commands build-analysis/compile_commands.json

if [[ "$RUN_TIDY" == 1 ]]; then
  echo "== clang-tidy (opt-in, $CLANG_TIDY) over compile_commands.json =="
  # The analysis tree exports compile_commands.json (on by default in the
  # top-level CMakeLists); run the committed .clang-tidy profile over the
  # library and tools sources.
  if [[ -n "$RUN_CLANG_TIDY" ]]; then
    "$RUN_CLANG_TIDY" -p build-analysis -quiet \
      -clang-tidy-binary "$(command -v "$CLANG_TIDY")" \
      "src/.*\.cpp" "tools/.*\.cpp"
  else
    git ls-files 'src/*.cpp' 'tools/*.cpp' \
      | xargs -P "$JOBS" -n 8 "$CLANG_TIDY" -p build-analysis --quiet
  fi
fi

echo "== tier 1: default build =="
cmake -B build -S . >/dev/null
cmake --build build -j"$JOBS"
ctest --test-dir build --output-on-failure -j"$JOBS"

echo "== telemetry smoke: --report-json / --trace-out / --events-out / --metrics-out =="
# End-to-end through the real binary: every artifact must be valid (JSON,
# event-schema, Prometheus exposition) and a report must diff clean against
# itself (also exercises compare_reports.py's parsing of every section it
# knows about). --metrics-every-ms 50 forces at least one periodic snapshot
# on top of the final flush, so the exporter thread path is exercised too.
TELEM_DIR=build/telemetry-smoke
mkdir -p "$TELEM_DIR"
build/tools/nullgraph generate --powerlaw --n 5000 --dmax 100 --swaps 3 \
  --seed 9 --out "$TELEM_DIR/graph.txt" \
  --report-json "$TELEM_DIR/report.json" \
  --trace-out "$TELEM_DIR/trace.json" \
  --events-out "$TELEM_DIR/events.jsonl" \
  --metrics-out "$TELEM_DIR/metrics.prom" --metrics-every-ms 50
python3 -m json.tool "$TELEM_DIR/report.json" >/dev/null
python3 -m json.tool "$TELEM_DIR/trace.json" >/dev/null
python3 scripts/compare_reports.py \
  "$TELEM_DIR/report.json" "$TELEM_DIR/report.json" >/dev/null
# The event stream must pass the full schema/ordering contract (no
# --allow-partial: a clean exit leaves no torn lines or unclosed phases)
# and contain at least the generation phases.
python3 scripts/validate_events.py --min-events 2 "$TELEM_DIR/events.jsonl"
python3 scripts/obs_tail.py --kind phase_end "$TELEM_DIR/events.jsonl" >/dev/null
grep -q '^# TYPE nullgraph_' "$TELEM_DIR/metrics.prom" \
  || { echo "metrics.prom has no Prometheus TYPE lines" >&2; exit 1; }

echo "== serve observability: metrics verb, event stream, cross-process trace =="
# A short live session: one traced submit plus the `metrics` control verb.
# The daemon-wide event stream must validate end-to-end, the scraped
# exposition must carry serve counters, and the merged trace must contain
# spans from BOTH processes (pid 1 client, pid 2 daemon) on one timeline.
OBS_DIR=build/obs-serve-smoke
rm -rf "$OBS_DIR"
mkdir -p "$OBS_DIR"
build/tools/nullgraph serve --socket "$OBS_DIR/obs.sock" --slots 2 \
  --events-out "$OBS_DIR/events.jsonl" >"$OBS_DIR/daemon.log" 2>&1 &
OBS_PID=$!
for _ in $(seq 1 100); do
  build/tools/nullgraph submit --socket "$OBS_DIR/obs.sock" --ping \
    >/dev/null 2>&1 && break
  sleep 0.1
done
build/tools/nullgraph submit --socket "$OBS_DIR/obs.sock" \
  --n 2000 --dmax 50 --swaps 1 --seed 3 \
  --out "$OBS_DIR/graph.txt" --trace-out "$OBS_DIR/trace.json"
build/tools/nullgraph submit --socket "$OBS_DIR/obs.sock" --metrics \
  >"$OBS_DIR/metrics.prom"
build/tools/nullgraph submit --socket "$OBS_DIR/obs.sock" --shutdown
wait "$OBS_PID"
python3 scripts/validate_events.py --min-events 3 "$OBS_DIR/events.jsonl"
grep -q '^nullgraph_serve_jobs_completed 1$' "$OBS_DIR/metrics.prom" \
  || { echo "metrics verb missing serve_jobs_completed" >&2; exit 1; }
grep -q '^nullgraph_serve_uptime_ms ' "$OBS_DIR/metrics.prom" \
  || { echo "metrics verb missing serve_uptime_ms gauge" >&2; exit 1; }
python3 - "$OBS_DIR/trace.json" <<'PY'
import json, sys
trace = json.load(open(sys.argv[1]))
events = trace["traceEvents"]
pids = {e["pid"] for e in events if e.get("ph") == "X"}
assert pids == {1, 2}, f"expected client+daemon spans, got pids {pids}"
names = {e["name"] for e in events if e.get("ph") == "X"}
assert "await result" in names, names   # client side
assert "queue wait" in names, names     # daemon side
PY

echo "== backend smoke: every registered backend end-to-end =="
# One shared command line covers every backend the registry lists: the CLI
# forwards only the parameters a backend declares, so --scale reaches rmat
# while the degree-distribution backends see --powerlaw/--n/--dmax (and
# lfr its own --n). Each run must produce a graph plus a report whose
# `model` block names the backend and its sampling space.
BACKEND_DIR=build/backend-smoke
mkdir -p "$BACKEND_DIR"
for backend in $(build/tools/nullgraph backends --names); do
  build/tools/nullgraph generate --backend "$backend" \
    --powerlaw --n 2000 --dmax 50 --scale 10 --seed 7 \
    --out "$BACKEND_DIR/$backend.txt" \
    --report-json "$BACKEND_DIR/$backend.json"
  test -s "$BACKEND_DIR/$backend.txt"
  python3 - "$BACKEND_DIR/$backend.json" "$backend" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
model = report["model"]
assert model["backend"] == sys.argv[2], model
space = model["sampling_space"]
for key in ("name", "self_loops", "multi_edges", "labeling"):
    assert key in space, (sys.argv[2], space)
assert isinstance(model["capabilities"], list), model
assert isinstance(model["space_verified"], bool), model
PY
done

echo "== serve smoke: chaos drill over the service daemon =="
# Deterministic end-to-end drill (scripts/chaos_serve.sh): admission storm
# with an exact completed/kOverloaded split, SIGKILL mid-job + restart
# recovery with no torn output, and accept/slow-client fault injections.
scripts/chaos_serve.sh build/serve-smoke

echo "== spill smoke: chaos drill over out-of-core generation =="
# Deterministic drill (scripts/chaos_spill.sh): memory-ceiling degradation
# with bit-identical merged output, SIGKILL between shard commits +
# --resume reusing every survivor, torn-shard fsck --repair --deep, and
# spill write-fault injection (retry absorbs one, exhaustion types 3).
scripts/chaos_spill.sh build/spill-smoke

echo "== bench drift vs checked-in baselines (informational) =="
# Absolute benchmark times move with the host, so drift beyond the
# threshold is REPORTED but never fails the build. Refresh the snapshots
# with scripts/bench_baseline.sh after an intentional perf change.
if [[ -f bench/baselines/BENCH_fig5.json && -x build/bench/bench_fig5_endtoend ]]; then
  DRIFT_DIR=build/bench-drift
  BUILD_DIR=build scripts/bench_baseline.sh "$DRIFT_DIR" >/dev/null
  python3 scripts/compare_reports.py --bench \
    bench/baselines/BENCH_fig5.json "$DRIFT_DIR/BENCH_fig5.json" \
    || echo "   (drift noted above is informational, not a failure)"
  python3 scripts/compare_reports.py --bench \
    bench/baselines/BENCH_sampling.json "$DRIFT_DIR/BENCH_sampling.json" \
    || echo "   (drift noted above is informational, not a failure)"
  python3 scripts/compare_reports.py --bench \
    bench/baselines/BENCH_spill.json "$DRIFT_DIR/BENCH_spill.json" \
    || echo "   (drift noted above is informational, not a failure)"
  python3 scripts/compare_reports.py --bench \
    bench/baselines/BENCH_backends.json "$DRIFT_DIR/BENCH_backends.json" \
    || echo "   (drift noted above is informational, not a failure)"
  python3 scripts/compare_reports.py --bench \
    bench/baselines/BENCH_obs.json "$DRIFT_DIR/BENCH_obs.json" \
    || echo "   (drift noted above is informational, not a failure)"
else
  echo "   (bench binaries or baselines absent; skipping)"
fi

if [[ "$SKIP_SAN" == 1 ]]; then
  echo "== sanitizer pass skipped (lint + analysis tiers already ran) =="
  exit 0
fi

echo "== tier 1: ASan/UBSan build =="
cmake -B build-asan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DNULLGRAPH_SANITIZE="address;undefined" \
  -DNULLGRAPH_BUILD_BENCH=OFF \
  -DNULLGRAPH_BUILD_EXAMPLES=OFF >/dev/null
cmake --build build-asan -j"$JOBS"
ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=halt_on_error=1 \
  ctest --test-dir build-asan --output-on-failure -j"$JOBS"

echo "== tier 1: TSan build (concurrency suites) =="
# TSan is incompatible with ASan/UBSan, so it gets its own tree. Only the
# suites with real cross-thread traffic run here: everything else would
# triple the wall time for no additional interleaving coverage.
cmake -B build-tsan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DNULLGRAPH_SANITIZE=thread \
  -DNULLGRAPH_BUILD_BENCH=OFF \
  -DNULLGRAPH_BUILD_EXAMPLES=OFF >/dev/null
cmake --build build-tsan -j"$JOBS"
TSAN_OPTIONS=halt_on_error=1 OMP_NUM_THREADS=4 \
  ctest --test-dir build-tsan --output-on-failure -j"$JOBS" \
    -R 'ConcurrentHashSet|Permutation|DoubleEdgeSwap|Governance|StallWatchdog|RunGovernor|ForChunks|Collect|Reduce|ThreadSweep|EdgeSkip|PrefixSum'

echo "== all checks passed =="
