// nullgraph — command-line front end for the library.
//
//   nullgraph generate --dist FILE [--seed S] [--swaps K] [--out FILE]
//   nullgraph generate --powerlaw N GAMMA DMIN DMAX [...]
//   nullgraph shuffle  --in FILE [--seed S] [--swaps K] [--out FILE]
//   nullgraph stats    --in FILE
//   nullgraph lfr      --n N --mu MU [--seed S] [--out FILE]
//   nullgraph dist     --in FILE [--out FILE]     (edge list -> distribution)
//
// Exit status 0 on success, 1 on bad usage, 2 on runtime failure.

#include <cstdio>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/gini.hpp"
#include "analysis/metrics.hpp"
#include "core/null_model.hpp"
#include "ds/csr_graph.hpp"
#include "analysis/motifs.hpp"
#include "gen/powerlaw.hpp"
#include "io/graph_io.hpp"
#include "lfr/lfr.hpp"

namespace {

using namespace nullgraph;

struct Args {
  std::vector<std::string> positional;
  std::vector<std::pair<std::string, std::string>> options;

  std::optional<std::string> get(const std::string& key) const {
    for (const auto& [k, v] : options)
      if (k == key) return v;
    return std::nullopt;
  }
  std::uint64_t get_u64(const std::string& key, std::uint64_t fallback) const {
    const auto value = get(key);
    return value ? std::strtoull(value->c_str(), nullptr, 10) : fallback;
  }
  double get_double(const std::string& key, double fallback) const {
    const auto value = get(key);
    return value ? std::atof(value->c_str()) : fallback;
  }
};

Args parse(int argc, char** argv) {
  Args args;
  for (int i = 2; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      const std::string key = token.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        args.options.emplace_back(key, argv[++i]);
      } else {
        args.options.emplace_back(key, "");
      }
    } else {
      args.positional.push_back(token);
    }
  }
  return args;
}

void print_graph_stats(const EdgeList& edges) {
  const std::size_t n = vertex_count(edges);
  const auto degrees = degrees_of(edges, n);
  std::uint64_t dmax = 0;
  for (std::uint64_t d : degrees) dmax = std::max(dmax, d);
  const SimplicityCensus c = census(edges);
  std::printf("vertices:      %zu\n", n);
  std::printf("edges:         %zu\n", edges.size());
  std::printf("avg degree:    %.3f\n",
              n ? 2.0 * static_cast<double>(edges.size()) /
                      static_cast<double>(n)
                : 0.0);
  std::printf("max degree:    %llu\n", static_cast<unsigned long long>(dmax));
  std::printf("gini:          %.4f\n", gini_coefficient(degrees));
  std::printf("assortativity: %+.4f\n", degree_assortativity(edges));
  std::printf("self loops:    %zu\n", c.self_loops);
  std::printf("multi edges:   %zu\n", c.multi_edges);
  if (edges.size() < 5'000'000) {
    const CsrGraph graph(edges, n);
    std::printf("triangles:     %llu\n",
                static_cast<unsigned long long>(count_triangles(graph)));
    std::printf("clustering:    %.5f\n", global_clustering(graph));
  }
}

int cmd_generate(const Args& args) {
  DegreeDistribution dist;
  if (const auto file = args.get("dist")) {
    dist = read_degree_distribution_file(*file);
  } else if (args.get("powerlaw")) {
    PowerlawParams params;
    params.n = args.get_u64("n", 100000);
    params.gamma = args.get_double("gamma", 2.5);
    params.dmin = args.get_u64("dmin", 1);
    params.dmax = args.get_u64("dmax", 1000);
    dist = powerlaw_distribution(params);
  } else {
    std::fprintf(stderr, "generate: need --dist FILE or --powerlaw\n");
    return 1;
  }
  GenerateConfig config;
  config.seed = args.get_u64("seed", 1);
  config.swap_iterations = args.get_u64("swaps", 10);
  const GenerateResult result = generate_null_graph(dist, config);
  const QualityErrors errors = quality_errors(dist, result.edges);
  std::fprintf(stderr,
               "generated %zu edges (target %llu); err: edges %.2f%% dmax "
               "%.2f%%; %.3f s\n",
               result.edges.size(),
               static_cast<unsigned long long>(dist.num_edges()),
               100 * errors.edge_count, 100 * errors.max_degree,
               result.timing.total_seconds());
  if (const auto out = args.get("out")) {
    write_edge_list_file(*out, result.edges);
  } else {
    print_graph_stats(result.edges);
  }
  return 0;
}

int cmd_shuffle(const Args& args) {
  const auto in = args.get("in");
  if (!in) {
    std::fprintf(stderr, "shuffle: need --in FILE\n");
    return 1;
  }
  EdgeList edges = read_edge_list_file(*in);
  GenerateConfig config;
  config.seed = args.get_u64("seed", 1);
  config.swap_iterations = args.get_u64("swaps", 10);
  const GenerateResult result = shuffle_graph(std::move(edges), config);
  std::fprintf(stderr, "shuffled: %zu swaps committed over %zu iterations\n",
               result.swap_stats.total_swapped(),
               result.swap_stats.iterations.size());
  if (const auto out = args.get("out")) {
    write_edge_list_file(*out, result.edges);
  } else {
    print_graph_stats(result.edges);
  }
  return 0;
}

int cmd_stats(const Args& args) {
  const auto in = args.get("in");
  if (!in) {
    std::fprintf(stderr, "stats: need --in FILE\n");
    return 1;
  }
  print_graph_stats(read_edge_list_file(*in));
  return 0;
}

int cmd_lfr(const Args& args) {
  LfrParams params;
  params.n = args.get_u64("n", 10000);
  params.mu = args.get_double("mu", 0.3);
  params.dmin = args.get_u64("dmin", 4);
  params.dmax = args.get_u64("dmax", 100);
  params.cmin = args.get_u64("cmin", 32);
  params.cmax = args.get_u64("cmax", 512);
  params.seed = args.get_u64("seed", 1);
  const LfrGraph graph = generate_lfr(params);
  std::fprintf(stderr, "lfr: %zu edges, %zu communities, achieved mu %.4f\n",
               graph.edges.size(), graph.num_communities, graph.achieved_mu);
  if (const auto out = args.get("out")) {
    write_edge_list_file(*out, graph.edges);
    if (const auto comm = args.get("communities")) {
      std::FILE* f = std::fopen(comm->c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", comm->c_str());
        return 2;
      }
      for (std::size_t v = 0; v < graph.community.size(); ++v)
        std::fprintf(f, "%zu %u\n", v, graph.community[v]);
      std::fclose(f);
    }
  } else {
    print_graph_stats(graph.edges);
  }
  return 0;
}

int cmd_dist(const Args& args) {
  const auto in = args.get("in");
  if (!in) {
    std::fprintf(stderr, "dist: need --in FILE\n");
    return 1;
  }
  const DegreeDistribution dist =
      DegreeDistribution::from_edges(read_edge_list_file(*in));
  if (const auto out = args.get("out")) {
    write_degree_distribution_file(*out, dist);
  } else {
    for (const DegreeClass& c : dist.classes())
      std::printf("%llu %llu\n", static_cast<unsigned long long>(c.degree),
                  static_cast<unsigned long long>(c.count));
  }
  return 0;
}

void usage() {
  std::fprintf(stderr,
               "usage: nullgraph <command> [options]\n"
               "  generate --dist FILE | --powerlaw [--n N --gamma G --dmin "
               "D --dmax D]  [--seed S --swaps K --out FILE]\n"
               "  shuffle  --in FILE [--seed S --swaps K --out FILE]\n"
               "  stats    --in FILE\n"
               "  lfr      [--n N --mu MU --dmin D --dmax D --cmin C --cmax "
               "C --seed S --out FILE --communities FILE]\n"
               "  dist     --in FILE [--out FILE]\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 1;
  }
  const std::string command = argv[1];
  const Args args = parse(argc, argv);
  try {
    if (command == "generate") return cmd_generate(args);
    if (command == "shuffle") return cmd_shuffle(args);
    if (command == "stats") return cmd_stats(args);
    if (command == "lfr") return cmd_lfr(args);
    if (command == "dist") return cmd_dist(args);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
  usage();
  return 1;
}
