// nullgraph — command-line front end for the library.
//
//   nullgraph generate --dist FILE [--seed S] [--swaps K] [--out FILE]
//   nullgraph generate --powerlaw N GAMMA DMIN DMAX [...]
//   nullgraph shuffle  --in FILE [--seed S] [--swaps K] [--out FILE]
//   nullgraph stats    --in FILE
//   nullgraph lfr      --n N --mu MU [--seed S] [--out FILE]
//   nullgraph dist     --in FILE [--out FILE]     (edge list -> distribution)
//
// Pipeline guardrails (generate / shuffle):
//   --strict          abort on the first invariant violation, exit with the
//                     violation's typed code (see below)
//   --repair          recover: retry-with-reseed, then repair pass
//   --max-retries K   swap-phase reseed budget under --repair (default 2)
//   --inject-drop N / --inject-dup N / --inject-loop N / --inject-prob N /
//   --inject-stall / --inject-slow-ms N / --inject-seed S
//                     seeded fault injection (testing hooks; inert when 0)
//
// Run governance (generate / shuffle; always on at the CLI surface):
//   --deadline-ms N          wall-clock budget; expiry curtails the run,
//                            the best-so-far graph is still written, and
//                            the exit code is 12 (kDeadlineExceeded)
//   --max-swap-iterations N  cap on swap iterations regardless of --swaps
//   --max-memory-mb N        skip the swap phase rather than exceed this
//                            estimated buffer footprint (exit 16)
//   --checkpoint FILE        swap-phase snapshot target (io/checkpoint.hpp)
//   --checkpoint-every N     snapshot every N completed swap iterations
//   --resume FILE            continue a checkpointed swap chain; with the
//                            same thread count the result is bit-identical
//                            to the uninterrupted run
//   SIGINT / SIGTERM         cooperative cancellation: the current run
//                            drains, writes its best-so-far graph, and
//                            exits 13 (kCancelled)
//
// Telemetry (generate / shuffle / resume / lfr):
//   --report-json FILE   versioned machine-readable run report: config
//                        fingerprint, per-phase wall times, exec-layer
//                        chunk/load-imbalance records, guardrail and
//                        governance outcomes, swap-chain convergence
//                        series, and the metrics registry snapshot
//   --trace-out FILE     Chrome-trace-event JSON (load in Perfetto or
//                        chrome://tracing): one span per pipeline phase,
//                        exec loop, swap iteration, and LFR layer
//
// Exit status: 0 success, 1 bad usage, 2 unclassified runtime failure,
// 3+ one per typed error class (status_exit_code in robustness/status.hpp):
// 3 kIoError, 4 kIoMalformed, 5 kNotGraphical, 6 kProbabilityOverflow,
// 7 kNonSimpleOutput, 8 kDegreeMismatch, 9 kSwapStagnation,
// 10 kConnectivityExhausted, 11 kRepairIncomplete, 12 kDeadlineExceeded,
// 13 kCancelled, 14 kSwapStalled, 15 kCapacityExhausted, 16 kMemoryBudget,
// 17 kCheckpointInvalid.

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/gini.hpp"
#include "analysis/metrics.hpp"
#include "core/null_model.hpp"
#include "ds/csr_graph.hpp"
#include "analysis/motifs.hpp"
#include "gen/powerlaw.hpp"
#include "io/checkpoint.hpp"
#include "io/graph_io.hpp"
#include "lfr/lfr.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "robustness/governance.hpp"
#include "robustness/status.hpp"
#include "util/parallel.hpp"

namespace {

using namespace nullgraph;

/// Process-wide cancellation token tripped by SIGINT/SIGTERM. The token's
/// store is a relaxed atomic write through a pre-built shared_ptr — no
/// allocation, so it is async-signal-safe. Constructed before the handler
/// is installed (install_signal_handlers calls this first).
CancelToken& global_cancel() {
  static CancelToken token;
  return token;
}

extern "C" void on_termination_signal(int) {
  global_cancel().request_cancel();
}

void install_signal_handlers() {
  (void)global_cancel();  // construct before any signal can arrive
  std::signal(SIGINT, on_termination_signal);
  std::signal(SIGTERM, on_termination_signal);
}

void usage() {
  std::fprintf(stderr,
               "usage: nullgraph <command> [options]\n"
               "  generate --dist FILE | --powerlaw [--n N --gamma G --dmin "
               "D --dmax D]  [--seed S --swaps K --out FILE]\n"
               "  shuffle  --in FILE [--seed S --swaps K --out FILE]\n"
               "  stats    --in FILE\n"
               "  lfr      [--n N --mu MU --dmin D --dmax D --cmin C --cmax "
               "C --seed S --out FILE --communities FILE]\n"
               "  dist     --in FILE [--out FILE]\n"
               "guardrails (generate/shuffle): --strict | --repair "
               "[--max-retries K]\n"
               "governance (generate/shuffle/lfr): --deadline-ms N "
               "--max-swap-iterations N --max-memory-mb N\n"
               "  --checkpoint FILE --checkpoint-every N --resume FILE\n"
               "fault injection (testing): --inject-drop N --inject-dup N "
               "--inject-loop N --inject-prob N --inject-stall "
               "--inject-slow-ms N --inject-seed S\n"
               "telemetry (generate/shuffle/lfr): --report-json FILE "
               "--trace-out FILE\n"
               "exit codes: 0 ok, 1 usage, 2 runtime, 3+ typed error class "
               "(see README)\n");
}

[[noreturn]] void die_usage(const std::string& key, const std::string& value,
                            const char* kind) {
  std::fprintf(stderr, "invalid %s for --%s: '%s'\n", kind, key.c_str(),
               value.c_str());
  usage();
  std::exit(1);
}

struct Args {
  std::vector<std::string> positional;
  std::vector<std::pair<std::string, std::string>> options;

  std::optional<std::string> get(const std::string& key) const {
    for (const auto& [k, v] : options)
      if (k == key) return v;
    return std::nullopt;
  }
  bool has(const std::string& key) const { return get(key).has_value(); }
  /// Strict base-10 unsigned parse: the whole token must be digits.
  /// strtoull alone would silently return 0 on garbage and wrap "-1".
  std::uint64_t get_u64(const std::string& key, std::uint64_t fallback) const {
    const auto value = get(key);
    if (!value) return fallback;
    if (value->empty() ||
        value->find_first_not_of("0123456789") != std::string::npos)
      die_usage(key, *value, "integer");
    errno = 0;
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(value->c_str(), &end, 10);
    if (errno == ERANGE || end != value->c_str() + value->size())
      die_usage(key, *value, "integer");
    return parsed;
  }
  /// Strict double parse: the whole token must be consumed.
  double get_double(const std::string& key, double fallback) const {
    const auto value = get(key);
    if (!value) return fallback;
    errno = 0;
    char* end = nullptr;
    const double parsed = std::strtod(value->c_str(), &end);
    if (value->empty() || end != value->c_str() + value->size() ||
        errno == ERANGE)
      die_usage(key, *value, "number");
    return parsed;
  }
};

Args parse(int argc, char** argv) {
  Args args;
  for (int i = 2; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      const std::string key = token.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        args.options.emplace_back(key, argv[++i]);
      } else {
        args.options.emplace_back(key, "");
      }
    } else {
      args.positional.push_back(token);
    }
  }
  return args;
}

GuardrailConfig guardrails_from(const Args& args) {
  GuardrailConfig guard;
  if (args.has("strict")) guard.policy = RecoveryPolicy::kStrict;
  if (args.has("repair")) guard.policy = RecoveryPolicy::kRepair;
  guard.max_retries = args.get_u64("max-retries", guard.max_retries);
  guard.faults.drop_edges = args.get_u64("inject-drop", 0);
  guard.faults.duplicate_edges = args.get_u64("inject-dup", 0);
  guard.faults.self_loops = args.get_u64("inject-loop", 0);
  guard.faults.corrupt_prob_entries = args.get_u64("inject-prob", 0);
  guard.faults.force_swap_stall = args.has("inject-stall");
  guard.faults.slow_phase_ms = args.get_u64("inject-slow-ms", 0);
  guard.faults.seed = args.get_u64("inject-seed", guard.faults.seed);
  return guard;
}

GovernanceConfig governance_from(const Args& args) {
  GovernanceConfig governance;
  // The CLI is the service surface: governance is on for every run, so
  // Ctrl-C always drains cooperatively even with no budget flags given.
  governance.enabled = true;
  governance.cancel = global_cancel();
  governance.budget.deadline_ms = args.get_u64("deadline-ms", 0);
  governance.budget.max_swap_iterations =
      args.get_u64("max-swap-iterations", 0);
  governance.budget.max_memory_bytes =
      args.get_u64("max-memory-mb", 0) * 1024 * 1024;
  governance.checkpoint_every = args.get_u64("checkpoint-every", 0);
  if (const auto path = args.get("checkpoint"))
    governance.checkpoint_path = *path;
  if (governance.checkpoint_every != 0 && governance.checkpoint_path.empty()) {
    std::fprintf(stderr, "--checkpoint-every needs --checkpoint FILE\n");
    std::exit(1);
  }
  return governance;
}

/// Per-process telemetry ownership behind --report-json / --trace-out.
/// Sinks exist only when their flag is present; context() hands the
/// (possibly null) borrowed handles to the library, and finish() writes
/// both artifacts AFTER the graph so telemetry can never cost the primary
/// output. A failed telemetry write turns an otherwise-clean exit into
/// kIoError; a run that already failed keeps its original typed code.
struct Telemetry {
  std::string report_path;
  std::string trace_path;
  std::unique_ptr<obs::MetricsRegistry> metrics;
  std::unique_ptr<obs::TraceSink> trace;
  std::vector<std::string> argv;  // config fingerprint for the report

  static Telemetry from(const Args& args, int argc, char** argv) {
    Telemetry telem;
    telem.argv.assign(argv, argv + argc);
    if (const auto path = args.get("report-json")) {
      telem.report_path = *path;
      telem.metrics = std::make_unique<obs::MetricsRegistry>();
    }
    if (const auto path = args.get("trace-out")) {
      telem.trace_path = *path;
      telem.trace = std::make_unique<obs::TraceSink>();
    }
    return telem;
  }

  obs::ObsContext context() const noexcept {
    return {metrics.get(), trace.get()};
  }

  int finish(const std::string& command, std::uint64_t seed,
             std::size_t swap_iterations, const GenerateResult* result,
             const LfrGraph* lfr, int code) {
    Status failed = Status::Ok();
    if (trace != nullptr) {
      const Status status = trace->write(trace_path);
      if (!status.ok()) failed = status;
    }
    if (!report_path.empty()) {
      obs::RunReportInputs inputs;
      inputs.command = command;
      inputs.argv = argv;
      inputs.seed = seed;
      inputs.threads = max_threads();
      inputs.swap_iterations_requested = swap_iterations;
      inputs.result = result;
      inputs.lfr = lfr;
      inputs.metrics = metrics.get();
      const Status status = obs::write_run_report(report_path, inputs);
      if (!status.ok()) failed = status;
    }
    if (!failed.ok()) {
      std::fprintf(stderr, "telemetry: %s\n", failed.to_string().c_str());
      if (code == 0) return status_exit_code(failed.code());
    }
    return code;
  }
};

/// Prints the report when anything noteworthy happened; returns the exit
/// code the guardrail contract demands (typed for --strict/--repair
/// residuals, 0 for record-only mode).
int finish_with_report(const PipelineReport& report, RecoveryPolicy policy) {
  if (!report.ok() || report.repair.touched() || report.retries_used > 0)
    std::fprintf(stderr, "guardrails:\n%s", report.summary().c_str());
  const Status err = report.first_error();
  if (err.ok()) return 0;
  // Record-only mode warns but keeps the legacy success status.
  if (policy == RecoveryPolicy::kReport) return 0;
  std::fprintf(stderr, "error: %s\n", err.to_string().c_str());
  return status_exit_code(err.code());
}

void print_graph_stats(const EdgeList& edges) {
  const std::size_t n = vertex_count(edges);
  const auto degrees = degrees_of(edges, n);
  std::uint64_t dmax = 0;
  for (std::uint64_t d : degrees) dmax = std::max(dmax, d);
  const SimplicityCensus c = census(edges);
  std::printf("vertices:      %zu\n", n);
  std::printf("edges:         %zu\n", edges.size());
  std::printf("avg degree:    %.3f\n",
              n ? 2.0 * static_cast<double>(edges.size()) /
                      static_cast<double>(n)
                : 0.0);
  std::printf("max degree:    %llu\n", static_cast<unsigned long long>(dmax));
  std::printf("gini:          %.4f\n", gini_coefficient(degrees));
  std::printf("assortativity: %+.4f\n", degree_assortativity(edges));
  std::printf("self loops:    %zu\n", c.self_loops);
  std::printf("multi edges:   %zu\n", c.multi_edges);
  if (edges.size() < 5'000'000) {
    const CsrGraph graph(edges, n);
    std::printf("triangles:     %llu\n",
                static_cast<unsigned long long>(count_triangles(graph)));
    std::printf("clustering:    %.5f\n", global_clustering(graph));
  }
}

/// Shared tail of generate/shuffle/resume. The graph goes out FIRST — a
/// curtailed run's primary artifact is whatever it did finish — and only
/// then is the exit code decided: guardrail residuals keep their typed
/// codes, and an otherwise-clean curtailed run exits with the curtailment's
/// code (12 deadline, 13 cancelled, 14 stalled, 16 memory budget) so
/// callers can distinguish "done" from "cut short" without parsing stderr.
int emit_result(const Args& args, const GenerateResult& result,
                RecoveryPolicy policy) {
  if (const auto out = args.get("out")) {
    write_edge_list_file(*out, result.edges);
  } else {
    print_graph_stats(result.edges);
  }
  const int code = finish_with_report(result.report, policy);
  if (code != 0) return code;
  const StatusCode curtailed = result.report.curtailed_by();
  if (curtailed != StatusCode::kOk) {
    std::fprintf(stderr, "run curtailed: %s (best-so-far graph written)\n",
                 status_code_name(curtailed));
    return status_exit_code(curtailed);
  }
  return 0;
}

/// `--resume FILE`: load the snapshot and finish its swap chain. Reachable
/// from both generate and shuffle (the checkpoint carries everything the
/// remaining phase needs, so the two commands converge here).
int cmd_resume(const Args& args, Telemetry& telem) {
  const std::string path = *args.get("resume");
  Result<Checkpoint> loaded = try_read_checkpoint(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n", loaded.status().to_string().c_str());
    return status_exit_code(loaded.status().code());
  }
  const Checkpoint& ckpt = loaded.value();
  std::fprintf(stderr,
               "resuming %s at swap iteration %llu/%llu (%zu edges)\n",
               path.c_str(),
               static_cast<unsigned long long>(ckpt.completed_iterations),
               static_cast<unsigned long long>(ckpt.total_iterations),
               ckpt.edges.size());
  GenerateConfig config;
  config.guardrails = guardrails_from(args);
  config.governance = governance_from(args);
  config.obs = telem.context();
  const GenerateResult result = resume_null_graph(ckpt, config);
  std::fprintf(stderr, "resumed: %zu swaps committed over %zu iterations\n",
               result.swap_stats.total_swapped(),
               result.swap_stats.iterations.size());
  const int code = emit_result(args, result, config.guardrails.policy);
  return telem.finish("resume", ckpt.swap_seed,
                      static_cast<std::size_t>(ckpt.total_iterations), &result,
                      nullptr, code);
}

int cmd_generate(const Args& args, Telemetry& telem) {
  if (args.has("resume")) return cmd_resume(args, telem);
  DegreeDistribution dist;
  if (const auto file = args.get("dist")) {
    dist = read_degree_distribution_file(*file);
  } else if (args.get("powerlaw")) {
    PowerlawParams params;
    params.n = args.get_u64("n", 100000);
    params.gamma = args.get_double("gamma", 2.5);
    params.dmin = args.get_u64("dmin", 1);
    params.dmax = args.get_u64("dmax", 1000);
    dist = powerlaw_distribution(params);
  } else {
    std::fprintf(stderr, "generate: need --dist FILE or --powerlaw\n");
    return 1;
  }
  GenerateConfig config;
  config.seed = args.get_u64("seed", 1);
  config.swap_iterations = args.get_u64("swaps", 10);
  config.guardrails = guardrails_from(args);
  config.governance = governance_from(args);
  config.obs = telem.context();
  const GenerateResult result = generate_null_graph(dist, config);
  const QualityErrors errors = quality_errors(dist, result.edges);
  std::fprintf(stderr,
               "generated %zu edges (target %llu); err: edges %.2f%% dmax "
               "%.2f%%; %.3f s\n",
               result.edges.size(),
               static_cast<unsigned long long>(dist.num_edges()),
               100 * errors.edge_count, 100 * errors.max_degree,
               result.timing.total_seconds());
  const int code = emit_result(args, result, config.guardrails.policy);
  return telem.finish("generate", config.seed, config.swap_iterations,
                      &result, nullptr, code);
}

int cmd_shuffle(const Args& args, Telemetry& telem) {
  if (args.has("resume")) return cmd_resume(args, telem);
  const auto in = args.get("in");
  if (!in) {
    std::fprintf(stderr, "shuffle: need --in FILE\n");
    return 1;
  }
  EdgeList edges = read_edge_list_file(*in);
  GenerateConfig config;
  config.seed = args.get_u64("seed", 1);
  config.swap_iterations = args.get_u64("swaps", 10);
  config.guardrails = guardrails_from(args);
  config.governance = governance_from(args);
  config.obs = telem.context();
  const GenerateResult result = shuffle_graph(std::move(edges), config);
  std::fprintf(stderr, "shuffled: %zu swaps committed over %zu iterations\n",
               result.swap_stats.total_swapped(),
               result.swap_stats.iterations.size());
  const int code = emit_result(args, result, config.guardrails.policy);
  return telem.finish("shuffle", config.seed, config.swap_iterations, &result,
                      nullptr, code);
}

int cmd_stats(const Args& args) {
  const auto in = args.get("in");
  if (!in) {
    std::fprintf(stderr, "stats: need --in FILE\n");
    return 1;
  }
  print_graph_stats(read_edge_list_file(*in));
  return 0;
}

int cmd_lfr(const Args& args, Telemetry& telem) {
  LfrParams params;
  params.n = args.get_u64("n", 10000);
  params.mu = args.get_double("mu", 0.3);
  params.dmin = args.get_u64("dmin", 4);
  params.dmax = args.get_u64("dmax", 100);
  params.cmin = args.get_u64("cmin", 32);
  params.cmax = args.get_u64("cmax", 512);
  params.seed = args.get_u64("seed", 1);
  // One governor spans every layer: --deadline-ms (and Ctrl-C) curtail the
  // whole multi-layer run, not just a single generate call.
  params.governance = governance_from(args);
  params.obs = telem.context();
  const LfrGraph graph = generate_lfr(params);
  std::fprintf(stderr, "lfr: %zu edges, %zu communities, achieved mu %.4f\n",
               graph.edges.size(), graph.num_communities, graph.achieved_mu);
  int code = 0;
  if (const auto out = args.get("out")) {
    write_edge_list_file(*out, graph.edges);
    if (const auto comm = args.get("communities")) {
      std::FILE* f = std::fopen(comm->c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", comm->c_str());
        code = 2;
      } else {
        for (std::size_t v = 0; v < graph.community.size(); ++v)
          std::fprintf(f, "%zu %u\n", v, graph.community[v]);
        std::fclose(f);
      }
    }
  } else {
    print_graph_stats(graph.edges);
  }
  // Like emit_result: the best-so-far graph goes out first, then a typed
  // exit code tells callers the run was cut short.
  if (code == 0 && graph.curtailed != StatusCode::kOk) {
    std::fprintf(stderr,
                 "run curtailed: %s (%zu/%zu community layers completed)\n",
                 status_code_name(graph.curtailed),
                 graph.communities_completed, graph.num_communities);
    code = status_exit_code(graph.curtailed);
  }
  return telem.finish("lfr", params.seed, params.swap_iterations, nullptr,
                      &graph, code);
}

int cmd_dist(const Args& args) {
  const auto in = args.get("in");
  if (!in) {
    std::fprintf(stderr, "dist: need --in FILE\n");
    return 1;
  }
  const DegreeDistribution dist =
      DegreeDistribution::from_edges(read_edge_list_file(*in));
  if (const auto out = args.get("out")) {
    write_degree_distribution_file(*out, dist);
  } else {
    for (const DegreeClass& c : dist.classes())
      std::printf("%llu %llu\n", static_cast<unsigned long long>(c.degree),
                  static_cast<unsigned long long>(c.count));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 1;
  }
  const std::string command = argv[1];
  const Args args = parse(argc, argv);
  Telemetry telem = Telemetry::from(args, argc, argv);
  install_signal_handlers();
  try {
    if (command == "generate") return cmd_generate(args, telem);
    if (command == "shuffle") return cmd_shuffle(args, telem);
    if (command == "stats") return cmd_stats(args);
    if (command == "lfr") return cmd_lfr(args, telem);
    if (command == "dist") return cmd_dist(args);
  } catch (const StatusError& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return status_exit_code(error.code());
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
  usage();
  return 1;
}
