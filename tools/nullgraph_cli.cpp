// nullgraph — command-line front end for the library.
//
//   nullgraph generate [--backend NAME] [--seed S] [--swaps K] [--out FILE]
//                      [--space simple|loopy|multi|loopy-multi]
//                      [--labeling stub|vertex] [backend params...]
//   nullgraph backends [--names]       (registered models + their params)
//   nullgraph shuffle  --in FILE [--seed S] [--swaps K] [--out FILE]
//   nullgraph stats    --in FILE
//   nullgraph lfr      --n N --mu MU [--seed S] [--out FILE]
//   nullgraph dist     --in FILE [--out FILE]     (edge list -> distribution)
//
// generate and lfr both dispatch through the model-backend registry
// (src/model/): --backend picks the generator (null-model, chung-lu,
// directed, bipartite, lfr, rmat, ...), per-backend parameters are the
// flags each backend declares (`nullgraph backends` lists them), and
// --space/--labeling select the sampling space per Dutta-Fosdick-Clauset.
// The registry driver owns the shared pipeline tail: capability
// validation, the sampling-space census, write-out, the report's `model`
// block.
//
// Pipeline guardrails (generate / shuffle):
//   --strict          abort on the first invariant violation, exit with the
//                     violation's typed code (see below)
//   --repair          recover: retry-with-reseed, then repair pass
//   --max-retries K   swap-phase reseed budget under --repair (default 2)
//   --inject-drop N / --inject-dup N / --inject-loop N / --inject-prob N /
//   --inject-stall / --inject-slow-ms N / --inject-seed S
//                     seeded fault injection (testing hooks; inert when 0)
//
// Run governance (generate / shuffle; always on at the CLI surface):
//   --deadline-ms N          wall-clock budget; expiry curtails the run,
//                            the best-so-far graph is still written, and
//                            the exit code is 12 (kDeadlineExceeded)
//   --max-swap-iterations N  cap on swap iterations regardless of --swaps
//   --max-memory-mb N        skip the swap phase rather than exceed this
//                            estimated buffer footprint (exit 16)
//   --checkpoint FILE        swap-phase snapshot target (io/checkpoint.hpp)
//   --checkpoint-every N     snapshot every N completed swap iterations
//   --resume FILE            continue a checkpointed swap chain; with the
//                            same thread count the result is bit-identical
//                            to the uninterrupted run
//   --resume DIR             continue a SPILLED run from its shard
//                            directory: CRC-complete shards are trusted,
//                            missing/torn ones regenerate bit-identically
//   SIGINT / SIGTERM         cooperative cancellation: the current run
//                            drains, writes its best-so-far graph, and
//                            exits 13 (kCancelled)
//
// Out-of-core generation (generate; DESIGN.md §10):
//   --spill-dir DIR      arm spill mode: when the projected generation
//                        footprint crosses --max-memory-mb the run
//                        DEGRADES to CRC-framed shard files under DIR
//                        (and still exits 0) instead of aborting; --out
//                        streams the shards back out with bounded memory
//   --spill-shards N     explicit shard count (default: auto-sized so one
//                        shard stays within a quarter of the ceiling)
//   --force-spill        spill even when the projection fits (drills,
//                        bit-identity tests)
//   --inject-spill-fail N  fail the next N shard commits (testing hook)
//   nullgraph fsck --dir DIR [--repair] [--deep]
//                        verify every shard's CRC framing; --repair
//                        regenerates damaged shards from the manifest,
//                        --deep adds the external-merge simplicity census.
//                        Exit 21 (kShardCorrupt) when damage remains.
//
// Telemetry (generate / shuffle / resume / lfr):
//   --report-json FILE   versioned machine-readable run report: config
//                        fingerprint, per-phase wall times, exec-layer
//                        chunk/load-imbalance records, guardrail and
//                        governance outcomes, swap-chain convergence
//                        series, and the metrics registry snapshot
//   --trace-out FILE     Chrome-trace-event JSON (load in Perfetto or
//                        chrome://tracing): one span per pipeline phase,
//                        exec loop, swap iteration, and LFR layer
//   --events-out FILE    structured JSONL event stream (DESIGN.md §12):
//                        one line per operational state transition (phase
//                        start/end, shard commit, checkpoint, curtailment,
//                        degradation), flushed per line so a crash leaves
//                        a valid prefix; scripts/obs_tail.py pretty-prints
//   --flight-out FILE    crash flight recorder: the last 256 event lines,
//                        dumped atomically on a fatal signal or any typed
//                        failure exit — the black box for post-mortems
//   --metrics-out FILE   periodic Prometheus text exposition snapshots
//                        (atomic tmp+rename every --metrics-every-ms,
//                        default 1000); point a node_exporter textfile
//                        collector or a test harness at it
//
//   serve accepts --events-out/--flight-out for a daemon-wide stream (job
//   admitted/evicted/completed + every worker's phase events, stamped with
//   job and trace ids); `submit --metrics` fetches a live Prometheus
//   exposition over the socket, and `submit --trace-out FILE` merges the
//   client's protocol spans with the daemon's worker spans into ONE
//   cross-process Perfetto timeline (queue wait and arbitration included).
//
// Service mode (DESIGN.md §9):
//   nullgraph serve  --socket PATH [--slots N --queue N --max-memory-mb N
//                     --spool DIR --report-dir DIR --threads N]
//                    long-running daemon: bounded job queue, per-job
//                    governance, admission control, crash recovery
//   nullgraph submit --socket PATH [job flags | --ping | --stats |
//                     --shutdown]
//                    client: submit one job and wait for its verdict
//   A second SIGINT/SIGTERM while the first is still draining force-exits
//   with code 13 — the escape hatch when a graceful drain is stuck.
//
// Exit status: 0 success, 1 bad usage, 2 unclassified runtime failure,
// 3+ one per typed error class (status_exit_code in robustness/status.hpp):
// 3 kIoError, 4 kIoMalformed, 5 kNotGraphical, 6 kProbabilityOverflow,
// 7 kNonSimpleOutput, 8 kDegreeMismatch, 9 kSwapStagnation,
// 10 kConnectivityExhausted, 11 kRepairIncomplete, 12 kDeadlineExceeded,
// 13 kCancelled, 14 kSwapStalled, 15 kCapacityExhausted, 16 kMemoryBudget,
// 17 kCheckpointInvalid, 18 kOverloaded, 19 kJobEvicted, 20 kClientProtocol,
// 21 kShardCorrupt.

#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/gini.hpp"
#include "analysis/metrics.hpp"
#include "core/null_model.hpp"
#include "core/out_of_core.hpp"
#include "ds/csr_graph.hpp"
#include "analysis/motifs.hpp"
#include "gen/powerlaw.hpp"
#include "io/checkpoint.hpp"
#include "io/graph_io.hpp"
#include "io/shard_merge.hpp"
#include "io/spill.hpp"
#include "lfr/lfr.hpp"
#include "model/driver.hpp"
#include "model/registry.hpp"
#include "obs/event_log.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/process_stats.hpp"
#include "obs/prometheus.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "obs/json_writer.hpp"
#include "robustness/governance.hpp"
#include "robustness/status.hpp"
#include "svc/client.hpp"
#include "svc/daemon.hpp"
#include "util/parallel.hpp"

namespace {

using namespace nullgraph;

/// Process-wide cancellation token tripped by SIGINT/SIGTERM. The token's
/// store is a relaxed atomic write through a pre-built shared_ptr — no
/// allocation, so it is async-signal-safe. Constructed before the handler
/// is installed (install_signal_handlers calls this first).
CancelToken& global_cancel() {
  // The init guard is settled before a signal can arrive:
  // install_signal_handlers() calls this first.
  // analyzer-ok(signal-safety): constructed before the handler is installed
  static CancelToken token;
  return token;
}

/// Received signal number (0 while running); the serve loop polls this to
/// begin its graceful shutdown.
std::atomic<int>& global_signal_flag() {
  static std::atomic<int> flag{0};
  return flag;
}

extern "C" void on_termination_signal(int signo) {
  // First signal: cooperative drain (cancel token + serve stop flag).
  // Second signal while the drain is still running: the operator means it —
  // force-exit with kCancelled's code. _exit is async-signal-safe and
  // status_exit_code is a pure switch.
  // relaxed: single-word flags with no dependent data to publish; the only
  // ordering that matters is each flag's own modification order.
  static std::atomic<int> deliveries{0};
  if (deliveries.fetch_add(1, std::memory_order_relaxed) > 0)
    _exit(status_exit_code(StatusCode::kCancelled));
  global_signal_flag().store(signo, std::memory_order_relaxed);
  global_cancel().request_cancel();
}

void install_signal_handlers() {
  (void)global_cancel();  // construct before any signal can arrive
  (void)global_signal_flag();
  std::signal(SIGINT, on_termination_signal);
  std::signal(SIGTERM, on_termination_signal);
}

/// Flight-recorder hookup for fatal signals. The pointer and path live in
/// fixed storage set BEFORE the handlers are armed, so the handler itself
/// touches nothing that allocates.
std::atomic<obs::FlightRecorder*>& global_flight() {
  static std::atomic<obs::FlightRecorder*> recorder{nullptr};
  return recorder;
}
char g_flight_path[256] = {0};

extern "C" void on_fatal_signal(int signo) {
  // dump() is async-signal-safe by contract (fixed buffers, raw syscalls,
  // tmp+rename); after the dump the default disposition re-raises so the
  // exit status still reflects the crash.
  // relaxed: lone pointer stored before the handler was armed; a fatal
  // signal cannot race the arm (signal() itself is the ordering point).
  obs::FlightRecorder* recorder =
      global_flight().load(std::memory_order_relaxed);
  if (recorder != nullptr) (void)recorder->dump(g_flight_path);
  std::signal(signo, SIG_DFL);
  std::raise(signo);
}

void arm_fatal_flight_dump(obs::FlightRecorder* recorder,
                           const std::string& path) {
  if (path.size() >= sizeof g_flight_path) {
    std::fprintf(stderr, "--flight-out path too long (max %zu)\n",
                 sizeof g_flight_path - 1);
    std::exit(1);
  }
  std::memcpy(g_flight_path, path.c_str(), path.size() + 1);
  // relaxed: stored before any fatal handler is installed below, so the
  // handler can never observe the pointer without the path already set.
  global_flight().store(recorder, std::memory_order_relaxed);
  std::signal(SIGSEGV, on_fatal_signal);
  std::signal(SIGABRT, on_fatal_signal);
  std::signal(SIGBUS, on_fatal_signal);
  std::signal(SIGFPE, on_fatal_signal);
  std::signal(SIGILL, on_fatal_signal);
}

void usage() {
  std::fprintf(stderr,
               "usage: nullgraph <command> [options]\n"
               "  generate [--backend NAME] [backend params] [--seed S "
               "--swaps K --out FILE]\n"
               "           [--space simple|loopy|multi|loopy-multi "
               "--labeling stub|vertex]\n"
               "  backends [--names]     (registered backends, capabilities, "
               "parameters)\n"
               "  shuffle  --in FILE [--seed S --swaps K --out FILE]\n"
               "  stats    --in FILE\n"
               "  lfr      [--n N --mu MU --dmin D --dmax D --cmin C --cmax "
               "C --seed S --out FILE --communities FILE]\n"
               "  dist     --in FILE [--out FILE]\n"
               "  fsck     --dir DIR [--repair --deep]    (spill directory "
               "check; exit 21 on damage)\n"
               "guardrails (generate/shuffle): --strict | --repair "
               "[--max-retries K]\n"
               "governance (generate/shuffle/lfr): --deadline-ms N "
               "--max-swap-iterations N --max-memory-mb N\n"
               "  --checkpoint FILE --checkpoint-every N --resume FILE|DIR\n"
               "out-of-core (generate): --spill-dir DIR [--spill-shards N "
               "--force-spill]\n"
               "fault injection (testing): --inject-drop N --inject-dup N "
               "--inject-loop N --inject-prob N --inject-stall "
               "--inject-slow-ms N --inject-spill-fail N --inject-seed S\n"
               "telemetry (generate/shuffle/lfr): --report-json FILE "
               "--trace-out FILE\n"
               "  --events-out FILE (JSONL event stream) --flight-out FILE "
               "(crash flight recorder)\n"
               "  --metrics-out FILE [--metrics-every-ms N] (periodic "
               "Prometheus snapshots)\n"
               "service mode:\n"
               "  serve  --socket PATH [--slots N --queue N --max-memory-mb N"
               " --spool DIR\n"
               "          --report-dir DIR --threads N --read-timeout-ms N"
               " --report-json FILE\n"
               "          --events-out FILE --flight-out FILE\n"
               "          --inject-accept-fail N --inject-slow-client-ms N"
               " --inject-ckpt-fail N]\n"
               "  submit --socket PATH [--ping | --stats | --metrics |"
               " --shutdown |\n"
               "          job: (--backend NAME [--param K=V ...] [--space S"
               " --labeling L] |\n"
               "                --powerlaw ... | --dist FILE | --in FILE |"
               " --upload FILE)\n"
               "          --seed S --swaps K --deadline-ms N --threads N\n"
               "          --checkpoint-every N --out FILE --save FILE"
               " --timeout-ms N --trace-out FILE]\n"
               "exit codes: 0 ok, 1 usage, 2 runtime, 3+ typed error class "
               "(see README)\n");
  // Generated from the registry so help cannot drift from what's linked in.
  std::fputs(model::registry_usage_text().c_str(), stderr);
}

[[noreturn]] void die_usage(const std::string& key, const std::string& value,
                            const char* kind) {
  std::fprintf(stderr, "invalid %s for --%s: '%s'\n", kind, key.c_str(),
               value.c_str());
  usage();
  std::exit(1);
}

struct Args {
  std::vector<std::string> positional;
  std::vector<std::pair<std::string, std::string>> options;

  std::optional<std::string> get(const std::string& key) const {
    for (const auto& [k, v] : options)
      if (k == key) return v;
    return std::nullopt;
  }
  bool has(const std::string& key) const { return get(key).has_value(); }
  /// Strict base-10 unsigned parse: the whole token must be digits.
  /// strtoull alone would silently return 0 on garbage and wrap "-1".
  std::uint64_t get_u64(const std::string& key, std::uint64_t fallback) const {
    const auto value = get(key);
    if (!value) return fallback;
    if (value->empty() ||
        value->find_first_not_of("0123456789") != std::string::npos)
      die_usage(key, *value, "integer");
    errno = 0;
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(value->c_str(), &end, 10);
    if (errno == ERANGE || end != value->c_str() + value->size())
      die_usage(key, *value, "integer");
    return parsed;
  }
  /// Strict double parse: the whole token must be consumed.
  double get_double(const std::string& key, double fallback) const {
    const auto value = get(key);
    if (!value) return fallback;
    errno = 0;
    char* end = nullptr;
    const double parsed = std::strtod(value->c_str(), &end);
    if (value->empty() || end != value->c_str() + value->size() ||
        errno == ERANGE)
      die_usage(key, *value, "number");
    return parsed;
  }
};

Args parse(int argc, char** argv) {
  Args args;
  for (int i = 2; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      const std::string key = token.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        args.options.emplace_back(key, argv[++i]);
      } else {
        args.options.emplace_back(key, "");
      }
    } else {
      args.positional.push_back(token);
    }
  }
  return args;
}

GuardrailConfig guardrails_from(const Args& args) {
  GuardrailConfig guard;
  if (args.has("strict")) guard.policy = RecoveryPolicy::kStrict;
  if (args.has("repair")) guard.policy = RecoveryPolicy::kRepair;
  guard.max_retries = args.get_u64("max-retries", guard.max_retries);
  guard.faults.drop_edges = args.get_u64("inject-drop", 0);
  guard.faults.duplicate_edges = args.get_u64("inject-dup", 0);
  guard.faults.self_loops = args.get_u64("inject-loop", 0);
  guard.faults.corrupt_prob_entries = args.get_u64("inject-prob", 0);
  guard.faults.force_swap_stall = args.has("inject-stall");
  guard.faults.slow_phase_ms = args.get_u64("inject-slow-ms", 0);
  guard.faults.fail_checkpoint_writes = args.get_u64("inject-ckpt-fail", 0);
  guard.faults.fail_spill_writes = args.get_u64("inject-spill-fail", 0);
  guard.faults.seed = args.get_u64("inject-seed", guard.faults.seed);
  return guard;
}

SpillConfig spill_from(const Args& args) {
  SpillConfig spill;
  if (const auto dir = args.get("spill-dir")) {
    spill.enabled = true;
    spill.dir = *dir;
  }
  spill.shard_count = args.get_u64("spill-shards", 0);
  spill.force = args.has("force-spill");
  if ((spill.force || spill.shard_count != 0) && !spill.enabled) {
    std::fprintf(stderr,
                 "--force-spill/--spill-shards need --spill-dir DIR\n");
    std::exit(1);
  }
  return spill;
}

bool is_directory(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

GovernanceConfig governance_from(const Args& args) {
  GovernanceConfig governance;
  // The CLI is the service surface: governance is on for every run, so
  // Ctrl-C always drains cooperatively even with no budget flags given.
  governance.enabled = true;
  governance.cancel = global_cancel();
  governance.budget.deadline_ms = args.get_u64("deadline-ms", 0);
  governance.budget.max_swap_iterations =
      args.get_u64("max-swap-iterations", 0);
  governance.budget.max_memory_bytes =
      args.get_u64("max-memory-mb", 0) * 1024 * 1024;
  governance.checkpoint_every = args.get_u64("checkpoint-every", 0);
  if (const auto path = args.get("checkpoint"))
    governance.checkpoint_path = *path;
  if (governance.checkpoint_every != 0 && governance.checkpoint_path.empty()) {
    std::fprintf(stderr, "--checkpoint-every needs --checkpoint FILE\n");
    std::exit(1);
  }
  return governance;
}

/// Per-process telemetry ownership behind --report-json / --trace-out.
/// Sinks exist only when their flag is present; context() hands the
/// (possibly null) borrowed handles to the library, and finish() writes
/// both artifacts AFTER the graph so telemetry can never cost the primary
/// output. A failed telemetry write turns an otherwise-clean exit into
/// kIoError; a run that already failed keeps its original typed code.
struct Telemetry {
  std::string report_path;
  std::string trace_path;
  std::string flight_path;
  std::unique_ptr<obs::MetricsRegistry> metrics;
  std::unique_ptr<obs::TraceSink> trace;
  std::unique_ptr<obs::EventLog> events;
  std::unique_ptr<obs::FlightRecorder> flight;
  std::unique_ptr<obs::MetricsExporter> exporter;
  std::vector<std::string> argv;  // config fingerprint for the report

  static Telemetry from(const Args& args, int argc, char** argv) {
    Telemetry telem;
    telem.argv.assign(argv, argv + argc);
    if (const auto path = args.get("report-json")) {
      telem.report_path = *path;
      telem.metrics = std::make_unique<obs::MetricsRegistry>();
    }
    if (const auto path = args.get("trace-out")) {
      telem.trace_path = *path;
      telem.trace = std::make_unique<obs::TraceSink>();
    }
    if (const auto path = args.get("events-out")) {
      telem.events = std::make_unique<obs::EventLog>();
      if (const Status s = telem.events->open(*path); !s.ok()) {
        std::fprintf(stderr, "telemetry: %s\n", s.to_string().c_str());
        std::exit(status_exit_code(s.code()));
      }
    }
    if (const auto path = args.get("flight-out")) {
      telem.flight_path = *path;
      telem.flight = std::make_unique<obs::FlightRecorder>();
      // Black-box-only mode: with no --events-out the log runs file-less
      // and still mirrors every line into the ring.
      if (telem.events == nullptr)
        telem.events = std::make_unique<obs::EventLog>();
      telem.events->attach_flight_recorder(telem.flight.get());
      arm_fatal_flight_dump(telem.flight.get(), telem.flight_path);
    }
    if (const auto path = args.get("metrics-out")) {
      if (telem.metrics == nullptr)
        telem.metrics = std::make_unique<obs::MetricsRegistry>();
      const std::uint64_t every =
          args.get_u64("metrics-every-ms", 1000);
      telem.exporter = std::make_unique<obs::MetricsExporter>();
      if (const Status s =
              telem.exporter->start(telem.metrics.get(), *path, every);
          !s.ok()) {
        std::fprintf(stderr, "telemetry: %s\n", s.to_string().c_str());
        std::exit(status_exit_code(s.code()));
      }
    } else if (args.has("metrics-every-ms")) {
      std::fprintf(stderr, "--metrics-every-ms needs --metrics-out FILE\n");
      std::exit(1);
    }
    return telem;
  }

  obs::ObsContext context() const noexcept {
    obs::ObsContext obs;
    obs.metrics = metrics.get();
    obs.trace = trace.get();
    obs.events = events.get();
    return obs;
  }

  int finish(const std::string& command, std::uint64_t seed,
             std::size_t swap_iterations, const GenerateResult* result,
             const LfrGraph* lfr, int code,
             const obs::ModelBlock* model = nullptr) {
    // Final resident/peak-memory sample lands in the report next to the
    // spill counters — the kernel's own proof that a spilled run stayed
    // within its ceiling.
    obs::record_process_memory(metrics.get());
    // The periodic exporter's last snapshot is taken AFTER the memory
    // sample above so the final file reflects the run's end state.
    if (exporter != nullptr) exporter->stop_and_flush();
    // Typed failures (curtailment, shard corruption, I/O, ...) dump the
    // flight ring: the last events before things went wrong, on disk even
    // though the run is over. Usage errors (1) and clean exits don't.
    if (flight != nullptr && code >= 2) {
      if (const Status s = flight->dump_to(flight_path); !s.ok())
        std::fprintf(stderr, "telemetry: flight dump failed: %s\n",
                     s.to_string().c_str());
      else
        std::fprintf(stderr, "flight recorder dumped -> %s\n",
                     flight_path.c_str());
    }
    Status failed = Status::Ok();
    if (trace != nullptr) {
      const Status status = trace->write(trace_path);
      if (!status.ok()) failed = status;
    }
    if (!report_path.empty()) {
      obs::RunReportInputs inputs;
      inputs.command = command;
      inputs.argv = argv;
      inputs.seed = seed;
      inputs.threads = max_threads();
      inputs.swap_iterations_requested = swap_iterations;
      inputs.result = result;
      inputs.lfr = lfr;
      inputs.metrics = metrics.get();
      inputs.model = model;
      const Status status = obs::write_run_report(report_path, inputs);
      if (!status.ok()) failed = status;
    }
    if (!failed.ok()) {
      std::fprintf(stderr, "telemetry: %s\n", failed.to_string().c_str());
      if (code == 0) return status_exit_code(failed.code());
    }
    return code;
  }
};

/// Prints the report when anything noteworthy happened; returns the exit
/// code the guardrail contract demands (typed for --strict/--repair
/// residuals, 0 for record-only mode).
int finish_with_report(const PipelineReport& report, RecoveryPolicy policy) {
  if (!report.ok() || report.repair.touched() || report.retries_used > 0)
    std::fprintf(stderr, "guardrails:\n%s", report.summary().c_str());
  const Status err = report.first_error();
  if (err.ok()) return 0;
  // Record-only mode warns but keeps the legacy success status.
  if (policy == RecoveryPolicy::kReport) return 0;
  std::fprintf(stderr, "error: %s\n", err.to_string().c_str());
  return status_exit_code(err.code());
}

void print_graph_stats(const EdgeList& edges) {
  const std::size_t n = vertex_count(edges);
  const auto degrees = degrees_of(edges, n);
  std::uint64_t dmax = 0;
  for (std::uint64_t d : degrees) dmax = std::max(dmax, d);
  const SimplicityCensus c = census(edges);
  std::printf("vertices:      %zu\n", n);
  std::printf("edges:         %zu\n", edges.size());
  std::printf("avg degree:    %.3f\n",
              n ? 2.0 * static_cast<double>(edges.size()) /
                      static_cast<double>(n)
                : 0.0);
  std::printf("max degree:    %llu\n", static_cast<unsigned long long>(dmax));
  std::printf("gini:          %.4f\n", gini_coefficient(degrees));
  std::printf("assortativity: %+.4f\n", degree_assortativity(edges));
  std::printf("self loops:    %zu\n", c.self_loops);
  std::printf("multi edges:   %zu\n", c.multi_edges);
  if (edges.size() < 5'000'000) {
    const CsrGraph graph(edges, n);
    std::printf("triangles:     %llu\n",
                static_cast<unsigned long long>(count_triangles(graph)));
    std::printf("clustering:    %.5f\n", global_clustering(graph));
  }
}

/// Shared tail of generate/shuffle/resume. The graph goes out FIRST — a
/// curtailed run's primary artifact is whatever it did finish — and only
/// then is the exit code decided: guardrail residuals keep their typed
/// codes, and an otherwise-clean curtailed run exits with the curtailment's
/// code (12 deadline, 13 cancelled, 14 stalled, 16 memory budget) so
/// callers can distinguish "done" from "cut short" without parsing stderr.
int emit_result(const Args& args, const GenerateResult& result,
                RecoveryPolicy policy) {
  if (result.spill.spilled) {
    const SpillSummary& spill = result.spill;
    std::fprintf(stderr,
                 "spilled: %llu edges across %llu shards in %s "
                 "(%llu written, %llu reused)\n",
                 static_cast<unsigned long long>(spill.edges_on_disk),
                 static_cast<unsigned long long>(spill.shard_count),
                 spill.dir.c_str(),
                 static_cast<unsigned long long>(spill.shards_written),
                 static_cast<unsigned long long>(spill.shards_reused));
    const bool complete =
        spill.shards_written + spill.shards_reused == spill.shard_count;
    if (!complete) {
      std::fprintf(stderr,
                   "spill incomplete; continue with --resume %s\n",
                   spill.dir.c_str());
      // A curtailed spill keeps the curtailment's typed code (below), but
      // an incomplete spill with a hard error (a shard write that
      // exhausted its retries) is a missing-output failure: typed even in
      // record-only mode, because the shard IS the data.
      const Status err = result.report.first_error();
      if (!err.ok() && result.report.curtailed_by() == StatusCode::kOk) {
        std::fprintf(stderr, "error: %s\n", err.to_string().c_str());
        return status_exit_code(err.code());
      }
    } else if (const auto out = args.get("out")) {
      // Bounded-memory exit path: shards stream straight into the output
      // file, in canonical order, without materializing the edge list.
      std::uint64_t merged = 0;
      const Status status = concat_shards_to_text_file(
          spill.dir, spill.shard_count, *out, &merged);
      if (!status.ok()) {
        std::fprintf(stderr, "error: %s\n", status.to_string().c_str());
        return status_exit_code(status.code());
      }
      std::fprintf(stderr, "merged %llu edges -> %s\n",
                   static_cast<unsigned long long>(merged), out->c_str());
    }
  } else if (const auto out = args.get("out")) {
    write_edge_list_file(*out, result.edges);
  } else {
    print_graph_stats(result.edges);
  }
  const int code = finish_with_report(result.report, policy);
  if (code != 0) return code;
  const StatusCode curtailed = result.report.curtailed_by();
  if (curtailed != StatusCode::kOk) {
    std::fprintf(stderr, "run curtailed: %s (best-so-far graph written)\n",
                 status_code_name(curtailed));
    return status_exit_code(curtailed);
  }
  return 0;
}

/// `--resume DIR` where DIR is a spill directory: shard-granular resume.
/// The manifest carries the distribution, seed, and shard plan, so no
/// other inputs are needed; CRC-complete shards are trusted, the rest
/// regenerate bit-identically.
int cmd_resume_spill(const Args& args, Telemetry& telem,
                     const std::string& dir) {
  GenerateConfig config;
  config.guardrails = guardrails_from(args);
  config.governance = governance_from(args);
  config.obs = telem.context();
  config.spill.enabled = true;
  config.spill.dir = dir;
  const Result<GenerateResult> resumed = resume_from_spill(dir, config);
  if (!resumed.ok()) {
    std::fprintf(stderr, "error: %s\n", resumed.status().to_string().c_str());
    return status_exit_code(resumed.status().code());
  }
  const GenerateResult& result = resumed.value();
  std::fprintf(stderr,
               "resumed spill %s: %llu shards reused, %llu regenerated\n",
               dir.c_str(),
               static_cast<unsigned long long>(result.spill.shards_reused),
               static_cast<unsigned long long>(result.spill.shards_written));
  const int code = emit_result(args, result, config.guardrails.policy);
  return telem.finish("resume", 0, 0, &result, nullptr, code);
}

/// `--resume FILE`: load the snapshot and finish its swap chain. Reachable
/// from both generate and shuffle (the checkpoint carries everything the
/// remaining phase needs, so the two commands converge here). A directory
/// argument means a spill directory instead of a checkpoint file.
int cmd_resume(const Args& args, Telemetry& telem) {
  const std::string path = *args.get("resume");
  if (is_directory(path)) return cmd_resume_spill(args, telem, path);
  Result<Checkpoint> loaded = try_read_checkpoint(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n", loaded.status().to_string().c_str());
    return status_exit_code(loaded.status().code());
  }
  const Checkpoint& ckpt = loaded.value();
  std::fprintf(stderr,
               "resuming %s at swap iteration %llu/%llu (%zu edges)\n",
               path.c_str(),
               static_cast<unsigned long long>(ckpt.completed_iterations),
               static_cast<unsigned long long>(ckpt.total_iterations),
               ckpt.edges.size());
  GenerateConfig config;
  config.guardrails = guardrails_from(args);
  config.governance = governance_from(args);
  config.obs = telem.context();
  const GenerateResult result = resume_null_graph(ckpt, config);
  std::fprintf(stderr, "resumed: %zu swaps committed over %zu iterations\n",
               result.swap_stats.total_swapped(),
               result.swap_stats.iterations.size());
  const int code = emit_result(args, result, config.guardrails.policy);
  return telem.finish("resume", ckpt.swap_seed,
                      static_cast<std::size_t>(ckpt.total_iterations), &result,
                      nullptr, code);
}

/// Stats printout for in-memory model output. Undirected graphs get the
/// full analysis block; directed/bipartite edges are ordered pairs, so the
/// undirected census and clustering would mislead — print the compact form.
void print_model_stats(const model::GenerateOutput& out) {
  if (out.directed) {
    std::printf("vertices:      %zu\n", vertex_count(out.result.edges));
    std::printf("arcs:          %zu\n", out.result.edges.size());
    return;
  }
  if (out.bipartite) {
    std::uint64_t right = 0;
    for (const Edge& edge : out.result.edges)
      right = std::max<std::uint64_t>(right, edge.v + 1);
    std::printf("left vertices:  %llu\n",
                static_cast<unsigned long long>(out.bipartite_left));
    std::printf("right vertices: %llu\n",
                static_cast<unsigned long long>(right));
    std::printf("edges:          %zu\n", out.result.edges.size());
    return;
  }
  print_graph_stats(out.result.edges);
}

/// Shared front end for every registry-driven command: lower argv into a
/// ModelSpec, run the driver, print its notes, and map the outcome to the
/// same exit-code contract emit_result implements for shuffle/resume.
int run_model_command(const std::string& command, const Args& args,
                      Telemetry& telem, const char* default_backend) {
  model::ModelSpec spec;
  spec.backend = args.get("backend").value_or(default_backend);
  spec.seed = args.get_u64("seed", 1);
  if (args.has("swaps")) spec.swap_iterations = args.get_u64("swaps", 10);
  // An unknown backend falls through to run_model, whose error names the
  // registered set.
  const model::GeneratorBackend* backend = model::find_backend(spec.backend);
  if (const auto name = args.get("space")) {
    const Result<model::SamplingSpace> parsed = model::parse_space(*name);
    if (!parsed.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   parsed.status().to_string().c_str());
      return status_exit_code(parsed.status().code());
    }
    model::SamplingSpace space = parsed.value();
    // --space alone keeps the backend's natural labeling; --labeling
    // overrides it below.
    if (backend != nullptr) space.labeling = backend->default_space().labeling;
    spec.space = space;
  }
  if (const auto name = args.get("labeling")) {
    const Result<model::Labeling> parsed = model::parse_labeling(*name);
    if (!parsed.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   parsed.status().to_string().c_str());
      return status_exit_code(parsed.status().code());
    }
    model::SamplingSpace space = spec.space.value_or(
        backend != nullptr ? backend->default_space()
                           : model::SamplingSpace{});
    space.labeling = parsed.value();
    spec.space = space;
  }
  if (backend != nullptr) {
    for (const model::BackendParam& param : backend->params())
      if (const auto value = args.get(param.key))
        spec.params.emplace_back(param.key, *value);
  }

  model::PipelineContext ctx;
  ctx.guardrails = guardrails_from(args);
  ctx.governance = governance_from(args);
  ctx.spill = spill_from(args);
  ctx.obs = telem.context();

  model::ModelRunOptions options;
  if (const auto out = args.get("out")) options.out_path = *out;
  if (const auto comm = args.get("communities"))
    options.communities_path = *comm;

  Result<model::ModelRun> ran = model::run_model(spec, ctx, options);
  if (!ran.ok()) {
    std::fprintf(stderr, "error: %s\n", ran.status().to_string().c_str());
    return status_exit_code(ran.status().code());
  }
  model::ModelRun& run = ran.value();
  for (const std::string& note : run.notes)
    std::fprintf(stderr, "%s\n", note.c_str());
  if (!run.wrote_output) print_model_stats(run.output);

  int code = 0;
  if (!run.emit_error.ok()) {
    std::fprintf(stderr, "error: %s\n", run.emit_error.to_string().c_str());
    code = status_exit_code(run.emit_error.code());
  }
  const PipelineReport& report = run.output.result.report;
  if (code == 0) code = finish_with_report(report, ctx.guardrails.policy);
  if (code == 0) {
    const StatusCode curtailed = report.curtailed_by();
    if (curtailed != StatusCode::kOk) {
      std::fprintf(stderr, "run curtailed: %s (best-so-far graph written)\n",
                   status_code_name(curtailed));
      code = status_exit_code(curtailed);
    }
  }
  const std::size_t swaps = spec.swap_iterations.value_or(
      backend != nullptr ? backend->default_swap_iterations() : 0);
  return telem.finish(command, spec.seed, swaps, &run.output.result,
                      run.output.lfr ? &*run.output.lfr : nullptr, code,
                      &run.model);
}

int cmd_generate(const Args& args, Telemetry& telem) {
  if (args.has("resume")) return cmd_resume(args, telem);
  return run_model_command("generate", args, telem, "null-model");
}

/// `nullgraph backends`: the registry, printed. --names is the machine
/// form (one backend name per line) the smoke tier iterates over.
int cmd_backends(const Args& args) {
  if (args.has("names")) {
    for (const model::GeneratorBackend* backend : model::all_backends())
      std::printf("%s\n", std::string(backend->name()).c_str());
    return 0;
  }
  std::fputs(model::describe_backends().c_str(), stdout);
  return 0;
}

int cmd_shuffle(const Args& args, Telemetry& telem) {
  if (args.has("resume")) return cmd_resume(args, telem);
  const auto in = args.get("in");
  if (!in) {
    std::fprintf(stderr, "shuffle: need --in FILE\n");
    return 1;
  }
  EdgeList edges = read_edge_list_file(*in);
  GenerateConfig config;
  config.seed = args.get_u64("seed", 1);
  config.swap_iterations = args.get_u64("swaps", 10);
  config.guardrails = guardrails_from(args);
  config.governance = governance_from(args);
  config.obs = telem.context();
  const GenerateResult result = shuffle_graph(std::move(edges), config);
  std::fprintf(stderr, "shuffled: %zu swaps committed over %zu iterations\n",
               result.swap_stats.total_swapped(),
               result.swap_stats.iterations.size());
  const int code = emit_result(args, result, config.guardrails.policy);
  return telem.finish("shuffle", config.seed, config.swap_iterations, &result,
                      nullptr, code);
}

int cmd_stats(const Args& args) {
  const auto in = args.get("in");
  if (!in) {
    std::fprintf(stderr, "stats: need --in FILE\n");
    return 1;
  }
  print_graph_stats(read_edge_list_file(*in));
  return 0;
}

int cmd_lfr(const Args& args, Telemetry& telem) {
  // The lfr command is an alias for `generate --backend lfr`; both reach
  // the registry driver, one governor spanning every community layer.
  return run_model_command("lfr", args, telem, "lfr");
}

/// `nullgraph serve`: the daemon. Blocks until a termination signal or a
/// client {"op":"shutdown"}; then reports what the run did, optionally as
/// a machine-readable JSON (--report-json) for the serve_smoke CI tier.
int cmd_serve(const Args& args) {
  const auto socket = args.get("socket");
  if (!socket || socket->empty()) {
    std::fprintf(stderr, "serve: need --socket PATH\n");
    return 1;
  }
  obs::MetricsRegistry metrics;
  svc::DaemonConfig config;
  config.socket_path = *socket;
  config.scheduler.slots = static_cast<int>(args.get_u64("slots", 2));
  config.scheduler.queue_capacity = args.get_u64("queue", 4);
  config.scheduler.memory_ceiling_bytes =
      args.get_u64("max-memory-mb", 0) * 1024 * 1024;
  if (const auto dir = args.get("spool")) config.scheduler.spool_dir = *dir;
  if (const auto dir = args.get("report-dir"))
    config.scheduler.report_dir = *dir;
  config.scheduler.total_threads =
      static_cast<int>(args.get_u64("threads", 0));
  config.scheduler.metrics = &metrics;
  config.scheduler.faults.fail_checkpoint_writes =
      args.get_u64("inject-ckpt-fail", 0);
  config.read_timeout_ms =
      static_cast<int>(args.get_u64("read-timeout-ms", 5000));
  config.faults.accept_fail = args.get_u64("inject-accept-fail", 0);
  config.faults.slow_client_ms = args.get_u64("inject-slow-client-ms", 0);
  config.stop_signal = &global_signal_flag();

  // Serve-wide observability: one event log and one flight ring span every
  // job the daemon runs. The ring mirrors the event stream, so arming
  // --flight-out alone still captures a black box with no events file.
  obs::EventLog events;
  obs::FlightRecorder flight;
  if (const auto path = args.get("events-out")) {
    if (const Status s = events.open(*path); !s.ok()) {
      std::fprintf(stderr, "serve: %s\n", s.to_string().c_str());
      return status_exit_code(s.code());
    }
    config.scheduler.events = &events;
  }
  if (const auto path = args.get("flight-out")) {
    events.attach_flight_recorder(&flight);
    config.scheduler.events = &events;
    config.scheduler.flight = &flight;
    config.scheduler.flight_path = *path;
    arm_fatal_flight_dump(&flight, *path);
  }

  std::fprintf(stderr, "serve: listening on %s (slots=%d queue=%zu)\n",
               config.socket_path.c_str(), config.scheduler.slots,
               config.scheduler.queue_capacity);
  const Result<svc::DaemonReport> run = svc::run_daemon(config);
  if (!run.ok()) {
    std::fprintf(stderr, "serve: %s\n", run.status().to_string().c_str());
    return status_exit_code(run.status().code());
  }
  const svc::DaemonReport& report = run.value();
  std::fprintf(stderr,
               "serve: done — %llu completed, %llu failed, %llu evicted, "
               "%llu rejected, %zu recovered, %llu connections\n",
               static_cast<unsigned long long>(report.stats.completed),
               static_cast<unsigned long long>(report.stats.failed),
               static_cast<unsigned long long>(report.stats.evicted),
               static_cast<unsigned long long>(report.stats.rejected),
               report.recovered,
               static_cast<unsigned long long>(report.connections));

  if (const auto path = args.get("report-json")) {
    // Daemon-level report: lifecycle totals + the metrics snapshot. A
    // different document from the per-job run reports (those live in
    // --report-dir and carry report_version 1).
    obs::JsonWriter w;
    w.begin_object();
    w.kv("serve_report_version", 1);
    w.kv("completed", report.stats.completed);
    w.kv("failed", report.stats.failed);
    w.kv("evicted", report.stats.evicted);
    w.kv("rejected", report.stats.rejected);
    w.kv("recovered", report.recovered);
    w.kv("connections", report.connections);
    w.kv("protocol_errors", report.protocol_errors);
    w.key("counters").begin_object();
    for (const auto& c : metrics.snapshot().counters) w.kv(c.name, c.value);
    w.end_object();
    w.end_object();
    if (const Status s = write_text_file_atomic(*path, std::move(w).str());
        !s.ok()) {
      std::fprintf(stderr, "serve: %s\n", s.to_string().c_str());
      return status_exit_code(s.code());
    }
  }
  return 0;
}

/// `nullgraph fsck`: verify (and optionally repair) a spill directory.
/// Per-shard verdicts go to stdout; exit 0 only when every shard is
/// healthy (and, under --deep, the merged census is simple) — damage that
/// remains maps to exit 21 (kShardCorrupt).
int cmd_fsck(const Args& args) {
  const auto dir = args.get("dir");
  if (!dir || dir->empty()) {
    std::fprintf(stderr, "fsck: need --dir DIR\n");
    return 1;
  }
  FsckOptions options;
  options.repair = args.has("repair");
  options.deep = args.has("deep");
  const Result<FsckReport> checked = fsck_spill_dir(*dir, options);
  if (!checked.ok()) {
    std::fprintf(stderr, "fsck: %s\n", checked.status().to_string().c_str());
    return status_exit_code(checked.status().code());
  }
  const FsckReport& report = checked.value();
  std::uint64_t healthy = 0;
  for (const ShardVerdict& v : report.shards) {
    const char* state = "ok";
    switch (v.state) {
      case ShardState::kOk: state = "ok"; break;
      case ShardState::kMissing: state = "MISSING"; break;
      case ShardState::kCorrupt: state = "CORRUPT"; break;
      case ShardState::kRepaired: state = "repaired"; break;
      case ShardState::kUnrepairable: state = "UNREPAIRABLE"; break;
    }
    std::printf("shard %06llu: %s (%llu edges)%s%s\n",
                static_cast<unsigned long long>(v.shard), state,
                static_cast<unsigned long long>(v.edges),
                v.detail.empty() ? "" : " — ", v.detail.c_str());
    if (v.healthy()) ++healthy;
  }
  std::printf("fsck: %llu/%llu shards healthy, %llu edges",
              static_cast<unsigned long long>(healthy),
              static_cast<unsigned long long>(report.shard_count),
              static_cast<unsigned long long>(report.total_edges));
  if (report.deep_ran)
    std::printf("; deep census: %s",
                report.deep_census.simple()
                    ? "simple"
                    : check_simple(report.deep_census).message().c_str());
  std::printf("\n");
  return report.ok() ? 0 : status_exit_code(StatusCode::kShardCorrupt);
}

/// Merges the client's protocol spans with the daemon's worker spans into
/// ONE Chrome-trace JSON: pid 1 = client, pid 2 = daemon. Both sides stamp
/// absolute CLOCK_MONOTONIC µs (machine-wide epoch), so a plain rebase to
/// the earliest timestamp puts queue wait, arbitration, and per-phase
/// execution on a single Perfetto timeline.
Status write_merged_trace(const std::string& path,
                          const obs::TraceSink& client,
                          const std::vector<obs::TraceEventView>& daemon) {
  std::vector<obs::TraceEventView> client_spans = client.export_events();
  std::uint64_t origin = UINT64_MAX;
  for (const obs::TraceEventView& e : client_spans)
    origin = std::min(origin, e.ts_us);
  for (const obs::TraceEventView& e : daemon)
    origin = std::min(origin, e.ts_us);
  if (origin == UINT64_MAX) origin = 0;

  obs::JsonWriter w;
  w.begin_object();
  w.key("traceEvents").begin_array();
  const auto emit_process_name = [&w](int pid, const char* name) {
    w.begin_object();
    w.kv("name", "process_name");
    w.kv("ph", "M");
    w.kv("pid", pid);
    w.kv("tid", 0);
    w.key("args").begin_object().kv("name", name).end_object();
    w.end_object();
  };
  emit_process_name(1, "submit client");
  emit_process_name(2, "serve daemon");
  const auto emit_span = [&w, origin](const obs::TraceEventView& e, int pid) {
    w.begin_object();
    w.kv("name", e.name);
    w.kv("ph", std::string(1, e.phase));
    w.kv("ts", e.ts_us - origin);
    if (e.phase == 'X') w.kv("dur", e.dur_us);
    w.kv("pid", pid);
    w.kv("tid", e.tid);
    w.end_object();
  };
  for (const obs::TraceEventView& e : client_spans) emit_span(e, 1);
  for (const obs::TraceEventView& e : daemon) emit_span(e, 2);
  w.end_array();
  w.kv("displayTimeUnit", "ms");
  w.end_object();
  return write_text_file_atomic(path, std::move(w).str());
}

/// `nullgraph submit`: one round-trip to a running daemon. Exit code is
/// the decisive status's typed code — admission rejects map to 18/19/20,
/// a curtailed-but-delivered job to the curtailment's code, clean runs
/// to 0 — so shell drills can assert the whole failure matrix.
int cmd_submit(const Args& args) {
  const auto socket = args.get("socket");
  if (!socket || socket->empty()) {
    std::fprintf(stderr, "submit: need --socket PATH\n");
    return 1;
  }
  svc::SubmitOptions options;
  options.socket_path = *socket;
  options.reply_timeout_ms =
      static_cast<int>(args.get_u64("timeout-ms", 0));

  if (args.has("ping")) {
    const Status s = svc::ping(options);
    std::fprintf(stderr, "ping: %s\n", s.ok() ? "ok" : s.to_string().c_str());
    return status_exit_code(s.code());
  }
  if (args.has("stats")) {
    Result<std::string> s = svc::request_stats(options);
    if (!s.ok()) {
      std::fprintf(stderr, "stats: %s\n", s.status().to_string().c_str());
      return status_exit_code(s.status().code());
    }
    std::printf("%s\n", s.value().c_str());
    return 0;
  }
  if (args.has("metrics")) {
    Result<std::string> m = svc::request_metrics(options);
    if (!m.ok()) {
      std::fprintf(stderr, "metrics: %s\n", m.status().to_string().c_str());
      return status_exit_code(m.status().code());
    }
    std::fputs(m.value().c_str(), stdout);
    return 0;
  }
  if (args.has("shutdown")) {
    const Status s = svc::request_shutdown(options);
    if (!s.ok()) std::fprintf(stderr, "shutdown: %s\n", s.to_string().c_str());
    return status_exit_code(s.code());
  }

  svc::JobSpec spec;
  if (const auto in = args.get("in")) {
    spec.op = svc::JobSpec::Op::kShuffle;
    spec.in_path = *in;
  } else if (const auto upload = args.get("upload")) {
    spec.op = svc::JobSpec::Op::kShuffle;
    spec.edges_follow = true;
    spec.edges = read_edge_list_file(*upload);
  } else if (const auto backend = args.get("backend")) {
    // Registry-backend job: --param K=V pairs (repeatable) travel verbatim
    // to the daemon's model driver; --space/--labeling pick the sampling
    // space. Validation happens server-side against the declared set.
    spec.op = svc::JobSpec::Op::kGenerate;
    spec.backend = *backend;
    for (const auto& [key, value] : args.options) {
      if (key != "param") continue;
      const std::size_t eq = value.find('=');
      if (eq == std::string::npos)
        spec.params.emplace_back(value, "");
      else
        spec.params.emplace_back(value.substr(0, eq), value.substr(eq + 1));
    }
    if (const auto space = args.get("space")) spec.space = *space;
    if (const auto labeling = args.get("labeling"))
      spec.labeling = *labeling;
    if (const auto dist = args.get("dist")) spec.dist_path = *dist;
  } else if (const auto dist = args.get("dist")) {
    spec.op = svc::JobSpec::Op::kGenerate;
    spec.dist_path = *dist;
  } else {
    spec.op = svc::JobSpec::Op::kGenerate;
    spec.powerlaw.n = args.get_u64("n", 100000);
    spec.powerlaw.gamma = args.get_double("gamma", 2.5);
    spec.powerlaw.dmin = args.get_u64("dmin", 1);
    spec.powerlaw.dmax = args.get_u64("dmax", 1000);
  }
  spec.seed = args.get_u64("seed", 1);
  spec.swaps = args.get_u64("swaps", 10);
  spec.deadline_ms = args.get_u64("deadline-ms", 0);
  spec.threads = static_cast<int>(args.get_u64("threads", 0));
  spec.checkpoint_every = args.get_u64("checkpoint-every", 0);
  if (const auto out = args.get("out")) spec.out_path = *out;
  spec.inject_slow_ms = args.get_u64("inject-job-slow-ms", 0);

  // --trace-out on submit means a CROSS-PROCESS trace: the client sink
  // records the protocol legs here, the trace id rides the job spec so the
  // daemon builds a per-job sink, and the returned spans merge below. The
  // id only needs to be unique per daemon lifetime; monotonic µs is.
  std::unique_ptr<obs::TraceSink> client_trace;
  std::string trace_path;
  if (const auto path = args.get("trace-out")) {
    trace_path = *path;
    client_trace = std::make_unique<obs::TraceSink>();
    options.trace = client_trace.get();
    spec.trace_id = obs::monotonic_us() | 1;
  }

  Result<svc::SubmitOutcome> sent = svc::submit_job(options, spec);
  if (!sent.ok()) {
    std::fprintf(stderr, "submit: %s\n", sent.status().to_string().c_str());
    return status_exit_code(sent.status().code());
  }
  const svc::SubmitOutcome& outcome = sent.value();
  if (!outcome.admission.ok()) {
    std::fprintf(stderr, "submit: rejected: %s",
                 outcome.admission.to_string().c_str());
    if (outcome.retry_after_ms > 0)
      std::fprintf(stderr, " (retry after %llu ms)",
                   static_cast<unsigned long long>(outcome.retry_after_ms));
    std::fprintf(stderr, "\n");
    return status_exit_code(outcome.admission.code());
  }
  std::fprintf(stderr, "submit: job %llu %s — %llu edges\n",
               static_cast<unsigned long long>(outcome.job_id),
               outcome.final_status.ok() ? "completed" : "failed",
               static_cast<unsigned long long>(outcome.edge_count));
  if (!outcome.final_status.ok())
    std::fprintf(stderr, "submit: %s\n",
                 outcome.final_status.to_string().c_str());
  if (client_trace != nullptr) {
    if (const Status s = write_merged_trace(trace_path, *client_trace,
                                            outcome.daemon_spans);
        !s.ok()) {
      std::fprintf(stderr, "submit: %s\n", s.to_string().c_str());
      return status_exit_code(s.code());
    }
    std::fprintf(stderr, "submit: merged trace (%zu daemon spans) -> %s\n",
                 outcome.daemon_spans.size(), trace_path.c_str());
  }
  if (const auto save = args.get("save")) {
    if (Status s = write_edge_list_file_atomic(*save, outcome.edges);
        !s.ok()) {
      std::fprintf(stderr, "submit: %s\n", s.to_string().c_str());
      return status_exit_code(s.code());
    }
  }
  if (!outcome.final_status.ok())
    return status_exit_code(outcome.final_status.code());
  if (outcome.curtailed_code != StatusCode::kOk) {
    std::fprintf(stderr, "submit: job curtailed: %s\n",
                 outcome.curtailed.c_str());
    return status_exit_code(outcome.curtailed_code);
  }
  return 0;
}

int cmd_dist(const Args& args) {
  const auto in = args.get("in");
  if (!in) {
    std::fprintf(stderr, "dist: need --in FILE\n");
    return 1;
  }
  const DegreeDistribution dist =
      DegreeDistribution::from_edges(read_edge_list_file(*in));
  if (const auto out = args.get("out")) {
    write_degree_distribution_file(*out, dist);
  } else {
    for (const DegreeClass& c : dist.classes())
      std::printf("%llu %llu\n", static_cast<unsigned long long>(c.degree),
                  static_cast<unsigned long long>(c.count));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 1;
  }
  const std::string command = argv[1];
  const Args args = parse(argc, argv);
  install_signal_handlers();
  try {
    // serve/submit own their observability wiring (serve-wide event log,
    // cross-process trace merge) — the batch Telemetry below must not also
    // claim the same sink files.
    if (command == "serve") return cmd_serve(args);
    if (command == "submit") return cmd_submit(args);
    if (command == "backends") return cmd_backends(args);
    if (command == "stats") return cmd_stats(args);
    if (command == "dist") return cmd_dist(args);
    if (command == "fsck") return cmd_fsck(args);
    Telemetry telem = Telemetry::from(args, argc, argv);
    if (command == "generate") return cmd_generate(args, telem);
    if (command == "shuffle") return cmd_shuffle(args, telem);
    if (command == "lfr") return cmd_lfr(args, telem);
  } catch (const StatusError& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return status_exit_code(error.code());
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
  usage();
  return 1;
}
